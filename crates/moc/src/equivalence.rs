//! Stretching, relaxation, clock- and flow-equivalence.
//!
//! These are the timing relations of Section 2.1 of the paper:
//!
//! * a behavior `c` is a **stretching** of `b` (written `b ≤ c`) when `c` is
//!   obtained from `b` by an order-preserving re-timing of the *whole*
//!   behavior: a single bijection on tags stretches every signal at once, so
//!   the relative synchronization of signals is preserved;
//! * `b` and `c` are **clock-equivalent** (`b ~ c`) when a common behavior
//!   stretches into both — equivalently, when they are equal up to an
//!   order-isomorphism on tags;
//! * a behavior `c` is a **relaxation** of `b` (`b ⊑ c`) when each signal of
//!   `c` is a stretching of the corresponding signal of `b` *independently*:
//!   relative synchronization between distinct signals may be lost;
//! * `b` and `c` are **flow-equivalent** (`b ≈ c`) when they have the same
//!   domain and every signal carries the same values in the same order.

use std::collections::BTreeMap;

use crate::{Behavior, Tag};

/// Tests whether `b` and `c` are clock-equivalent (`b ~ c`).
///
/// Two behaviors are clock-equivalent iff they are equal up to an
/// order-isomorphism on tags.  Because tags are totally ordered this is
/// decided by aligning the sorted tag sets of both behaviors positionally and
/// checking that every signal is present with equal values at corresponding
/// positions.
pub fn clock_equivalent(b: &Behavior, c: &Behavior) -> bool {
    if b.domain_set() != c.domain_set() {
        return false;
    }
    let tags_b: Vec<Tag> = b.tags().into_iter().collect();
    let tags_c: Vec<Tag> = c.tags().into_iter().collect();
    if tags_b.len() != tags_c.len() {
        return false;
    }
    // Position of each tag in the global chain of the behavior.
    let pos_b: BTreeMap<Tag, usize> = tags_b.iter().enumerate().map(|(i, t)| (*t, i)).collect();
    let pos_c: BTreeMap<Tag, usize> = tags_c.iter().enumerate().map(|(i, t)| (*t, i)).collect();

    for name in b.domain() {
        let sb = b.stream(name.as_str()).expect("name in domain");
        let sc = c.stream(name.as_str()).expect("same domain");
        if sb.len() != sc.len() {
            return false;
        }
        let events_b: Vec<_> = sb.iter().map(|(t, v)| (pos_b[&t], v)).collect();
        let events_c: Vec<_> = sc.iter().map(|(t, v)| (pos_c[&t], v)).collect();
        if events_b != events_c {
            return false;
        }
    }
    true
}

/// Tests whether `b` and `c` are flow-equivalent (`b ≈ c`).
///
/// Flow equivalence requires the same domain and, signal per signal, the same
/// sequence of values — timing (and relative synchronization) is ignored.
pub fn flow_equivalent(b: &Behavior, c: &Behavior) -> bool {
    if b.domain_set() != c.domain_set() {
        return false;
    }
    b.domain().all(|name| {
        let sb = b.stream(name.as_str()).expect("name in domain");
        let sc = c.stream(name.as_str()).expect("same domain");
        sb.same_flow(sc)
    })
}

/// Tests whether `c` is a stretching of `b` (`b ≤ c`).
///
/// A stretching preserves the global synchronization structure: there must be
/// a single order-preserving injection of the tags of `b` into tags such that
/// every signal of `c` is the image of the corresponding signal of `b`.
/// Since behaviors here are finite and total on their tags, `b ≤ c` holds iff
/// `b` and `c` are clock-equivalent — stretching cannot add or remove events.
/// The function is still provided separately because the *direction* of the
/// relation matters when defining relaxation and the paper's definitions.
pub fn is_stretching(b: &Behavior, c: &Behavior) -> bool {
    clock_equivalent(b, c)
}

/// Tests whether `c` is a relaxation of `b` (`b ⊑ c`).
///
/// Relaxation applies an independent stretching to every signal: `c` is a
/// relaxation of `b` iff both have the same domain and, for every signal,
/// the sequences of values coincide (each signal considered in isolation is
/// stretched, i.e. value-preserving and order-preserving).
pub fn is_relaxation(b: &Behavior, c: &Behavior) -> bool {
    flow_equivalent(b, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Stream, Value};

    /// The pair of clock-equivalent behaviors from Section 2.1 of the paper.
    fn paper_pair() -> (Behavior, Behavior) {
        let mut b = Behavior::new();
        b.insert_stream(
            "y",
            Stream::from_events([
                (Tag::new(1), Value::from(true)),
                (Tag::new(2), Value::from(false)),
                (Tag::new(3), Value::from(false)),
            ]),
        );
        b.insert_event("x", Tag::new(2), Value::from(true));

        let mut c = Behavior::new();
        c.insert_stream(
            "y",
            Stream::from_events([
                (Tag::new(10), Value::from(true)),
                (Tag::new(30), Value::from(false)),
                (Tag::new(50), Value::from(false)),
            ]),
        );
        c.insert_event("x", Tag::new(30), Value::from(true));
        (b, c)
    }

    #[test]
    fn paper_example_is_clock_equivalent() {
        let (b, c) = paper_pair();
        assert!(clock_equivalent(&b, &c));
        assert!(clock_equivalent(&c, &b));
    }

    #[test]
    fn clock_equivalence_is_sensitive_to_synchronization() {
        // The flow-equivalence example of the paper: x moves from t2 to u1,
        // losing its synchronization with the second event of y.
        let (b, _) = paper_pair();
        let mut c = Behavior::new();
        c.insert_stream(
            "y",
            Stream::from_events([
                (Tag::new(1), Value::from(true)),
                (Tag::new(2), Value::from(false)),
                (Tag::new(3), Value::from(false)),
            ]),
        );
        c.insert_event("x", Tag::new(1), Value::from(true));
        assert!(!clock_equivalent(&b, &c));
        assert!(flow_equivalent(&b, &c));
    }

    #[test]
    fn flow_equivalence_requires_same_values() {
        let (b, _) = paper_pair();
        let mut c = b.clone();
        c.insert_event("x", Tag::new(2), Value::from(false));
        assert!(!flow_equivalent(&b, &c));
    }

    #[test]
    fn equivalences_require_equal_domains() {
        let (b, _) = paper_pair();
        let only_y = b.restrict(["y"]);
        assert!(!clock_equivalent(&b, &only_y));
        assert!(!flow_equivalent(&b, &only_y));
    }

    #[test]
    fn clock_equivalence_is_reflexive_and_symmetric() {
        let (b, c) = paper_pair();
        assert!(clock_equivalent(&b, &b));
        assert!(clock_equivalent(&c, &c));
        assert_eq!(clock_equivalent(&b, &c), clock_equivalent(&c, &b));
    }

    #[test]
    fn clock_equivalence_implies_flow_equivalence() {
        let (b, c) = paper_pair();
        assert!(clock_equivalent(&b, &c));
        assert!(flow_equivalent(&b, &c));
    }

    #[test]
    fn different_event_counts_are_never_equivalent() {
        let (b, _) = paper_pair();
        let mut c = b.clone();
        c.insert_event("x", Tag::new(3), Value::from(true));
        assert!(!clock_equivalent(&b, &c));
        assert!(!flow_equivalent(&b, &c));
    }

    #[test]
    fn stretching_and_relaxation_directions() {
        let (b, c) = paper_pair();
        assert!(is_stretching(&b, &c));
        assert!(is_relaxation(&b, &c));
    }
}
