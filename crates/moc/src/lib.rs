//! Polychronous model of computation.
//!
//! This crate implements the denotational domain used by the paper
//! *Compositional design of isochronous systems* (Talpin, Ouy, Besnard,
//! Le Guernic — DATE 2008 / INRIA RR-6227), which itself refines Lee's
//! tagged-signal model:
//!
//! * an **event** is a pair of a [`Tag`] and a [`Value`];
//! * a **signal** ([`Stream`]) is a function from a chain of tags to values;
//! * a **behavior** ([`Behavior`]) is a function from names to signals;
//! * a **reaction** ([`Reaction`]) is a behavior with at most one tag;
//! * a **process** ([`TraceSet`]) is a set of behaviors over the same domain.
//!
//! On top of the raw objects the crate provides the timing relations the
//! paper relies on: *stretching* (`b <= c`), *relaxation* (`b ⊑ c`),
//! *clock-equivalence* (`b ~ c`), *flow-equivalence* (`b ≈ c`), reaction
//! concatenation (`b · r`), the union of independent reactions (`r ⊔ s`)
//! and the synchronous / asynchronous composition of trace sets.
//!
//! # Example
//!
//! ```
//! use moc::{Behavior, Tag, Value};
//!
//! // The `filter` example of the paper: two clock-equivalent behaviors.
//! let mut b = Behavior::new();
//! b.insert_event("y", Tag::new(1), Value::from(true));
//! b.insert_event("y", Tag::new(2), Value::from(false));
//! b.insert_event("x", Tag::new(2), Value::from(true));
//!
//! let mut c = Behavior::new();
//! c.insert_event("y", Tag::new(10), Value::from(true));
//! c.insert_event("y", Tag::new(30), Value::from(false));
//! c.insert_event("x", Tag::new(30), Value::from(true));
//!
//! assert!(b.clock_equivalent(&c));
//! assert!(b.flow_equivalent(&c));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod compose;
pub mod equivalence;
pub mod name;
pub mod reaction;
pub mod stream;
pub mod tag;
pub mod trace_set;
pub mod value;

pub use behavior::Behavior;
pub use compose::{async_compose, sync_compose};
pub use name::Name;
pub use reaction::Reaction;
pub use stream::Stream;
pub use tag::Tag;
pub use trace_set::TraceSet;
pub use value::Value;
