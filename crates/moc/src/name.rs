//! Signal names.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// The name of a signal.
///
/// Names are reference-counted strings so that behaviors, reactions and trace
/// sets can be cloned cheaply.  They compare, order and hash like the string
/// they carry.
///
/// # Example
///
/// ```
/// use moc::Name;
/// let x = Name::from("x");
/// assert_eq!(x.as_str(), "x");
/// assert_eq!(x, Name::from(String::from("x")));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name(Arc<str>);

impl Name {
    /// Creates a name from anything string-like.
    pub fn new(name: impl AsRef<str>) -> Self {
        Name(Arc::from(name.as_ref()))
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name::new(s)
    }
}

impl From<&Name> for Name {
    fn from(n: &Name) -> Self {
        n.clone()
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn equality_is_structural() {
        assert_eq!(Name::from("x"), Name::new("x"));
        assert_ne!(Name::from("x"), Name::from("y"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Name::from("a") < Name::from("b"));
        assert!(Name::from("x1") < Name::from("x2"));
    }

    #[test]
    fn can_be_looked_up_by_str_in_sets() {
        let mut set = BTreeSet::new();
        set.insert(Name::from("x"));
        assert!(set.contains("x"));
        assert!(!set.contains("y"));
    }

    #[test]
    fn display_is_the_raw_string() {
        assert_eq!(Name::from("sig_7").to_string(), "sig_7");
    }
}
