//! Reactions: behaviors with at most one time tag.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::{Behavior, Name, Tag, Value};

/// A reaction `r`: a behavior with (at most) one time tag.
///
/// A reaction has a *domain* (the names it is defined on), an optional tag
/// and, for a subset of its domain, a value per present signal.  The empty
/// reaction on the names `X` (written `Ø|X` in the paper) has no tag and no
/// present signal.
///
/// # Example
///
/// ```
/// use moc::{Reaction, Tag, Value};
/// let mut r = Reaction::empty_on(["x", "y"]);
/// r.set_tag(Tag::new(3));
/// r.insert("x", Value::from(true));
/// assert!(r.is_present("x"));
/// assert!(!r.is_present("y"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reaction {
    domain: BTreeSet<Name>,
    tag: Option<Tag>,
    events: BTreeMap<Name, Value>,
}

impl Reaction {
    /// Creates the empty reaction `Ø|X` on the domain `names`.
    pub fn empty_on<I, N>(names: I) -> Self
    where
        I: IntoIterator<Item = N>,
        N: Into<Name>,
    {
        Reaction {
            domain: names.into_iter().map(Into::into).collect(),
            tag: None,
            events: BTreeMap::new(),
        }
    }

    /// Sets the unique time tag of the reaction.
    pub fn set_tag(&mut self, tag: Tag) {
        self.tag = Some(tag);
    }

    /// The time tag `T(r)` of the reaction, if it is not empty.
    pub fn tag(&self) -> Option<Tag> {
        self.tag
    }

    /// Adds `name` to the domain without making it present.
    pub fn declare(&mut self, name: impl Into<Name>) {
        self.domain.insert(name.into());
    }

    /// Makes the signal `name` present with value `value`.
    ///
    /// The name is added to the domain if it was not declared.
    pub fn insert(&mut self, name: impl Into<Name>, value: Value) {
        let name = name.into();
        self.domain.insert(name.clone());
        self.events.insert(name, value);
    }

    /// The domain `V(r)` of the reaction.
    pub fn domain(&self) -> impl Iterator<Item = &Name> + '_ {
        self.domain.iter()
    }

    /// The domain as an owned set.
    pub fn domain_set(&self) -> BTreeSet<Name> {
        self.domain.clone()
    }

    /// Returns `true` when `name` is present in the reaction.
    pub fn is_present(&self, name: &str) -> bool {
        self.events.contains_key(name)
    }

    /// Returns the value carried by `name`, if present.
    pub fn value(&self, name: &str) -> Option<Value> {
        self.events.get(name).copied()
    }

    /// Iterates over the present signals of the reaction, with their values.
    pub fn events(&self) -> impl Iterator<Item = (&Name, Value)> + '_ {
        self.events.iter().map(|(n, v)| (n, *v))
    }

    /// The set of present signal names.
    pub fn present_set(&self) -> BTreeSet<Name> {
        self.events.keys().cloned().collect()
    }

    /// The number of present signals.
    pub fn present_count(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when the reaction has no present signal (it stutters).
    pub fn is_silent(&self) -> bool {
        self.events.is_empty()
    }

    /// Returns `true` when `self` and `other` are *independent*: their sets
    /// of present signals are disjoint.
    ///
    /// Independence is the side condition of the diamond properties (2a)–(2c)
    /// of weak endochrony (Definition 2 of the paper).
    pub fn independent(&self, other: &Reaction) -> bool {
        self.events
            .keys()
            .all(|n| !other.events.contains_key(n.as_str()))
    }

    /// The union `r ⊔ s` of two independent reactions of the same tag.
    ///
    /// Returns `None` when the reactions are not independent.  The resulting
    /// domain is the union of the domains and the tag is the tag of either
    /// operand (the non-empty one if only one has a tag).
    pub fn union(&self, other: &Reaction) -> Option<Reaction> {
        if !self.independent(other) {
            return None;
        }
        let mut out = self.clone();
        out.domain.extend(other.domain.iter().cloned());
        for (n, v) in &other.events {
            out.events.insert(n.clone(), *v);
        }
        if out.tag.is_none() {
            out.tag = other.tag;
        }
        Some(out)
    }

    /// The restriction of the reaction to the names in `names`.
    pub fn restrict<'a, I>(&self, names: I) -> Reaction
    where
        I: IntoIterator<Item = &'a str>,
    {
        let wanted: BTreeSet<&str> = names.into_iter().collect();
        Reaction {
            domain: self
                .domain
                .iter()
                .filter(|n| wanted.contains(n.as_str()))
                .cloned()
                .collect(),
            tag: self.tag,
            events: self
                .events
                .iter()
                .filter(|(n, _)| wanted.contains(n.as_str()))
                .map(|(n, v)| (n.clone(), *v))
                .collect(),
        }
    }

    /// Converts the reaction into a one-instant behavior.
    pub fn to_behavior(&self) -> Behavior {
        let mut b = Behavior::empty_on(self.domain.iter().cloned());
        if let Some(tag) = self.tag {
            for (n, v) in &self.events {
                b.insert_event(n.clone(), tag, *v);
            }
        }
        b
    }
}

impl fmt::Display for Reaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tag {
            None => write!(f, "Ø|{{{}}}", join(&self.domain)),
            Some(tag) => {
                write!(f, "{{")?;
                let mut first = true;
                for (n, v) in &self.events {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}:({tag},{v})")?;
                    first = false;
                }
                write!(f, "}}")
            }
        }
    }
}

fn join(names: &BTreeSet<Name>) -> String {
    names.iter().map(Name::as_str).collect::<Vec<_>>().join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reaction(tag: u64, pairs: &[(&str, Value)]) -> Reaction {
        let mut r = Reaction::empty_on(pairs.iter().map(|(n, _)| *n));
        r.set_tag(Tag::new(tag));
        for (n, v) in pairs {
            r.insert(*n, *v);
        }
        r
    }

    #[test]
    fn empty_reaction_has_no_tag_and_is_silent() {
        let r = Reaction::empty_on(["x", "y"]);
        assert!(r.tag().is_none());
        assert!(r.is_silent());
        assert_eq!(r.domain_set().len(), 2);
        assert_eq!(r.present_count(), 0);
    }

    #[test]
    fn insert_makes_signals_present() {
        let r = reaction(2, &[("y", Value::from(false)), ("x", Value::from(true))]);
        assert!(r.is_present("x"));
        assert_eq!(r.value("y"), Some(Value::from(false)));
        assert_eq!(r.value("z"), None);
        assert_eq!(r.present_count(), 2);
    }

    #[test]
    fn independence_is_disjointness_of_present_sets() {
        let r = reaction(2, &[("y", Value::from(false))]);
        let s = reaction(2, &[("x", Value::from(true))]);
        let t = reaction(2, &[("y", Value::from(true))]);
        assert!(r.independent(&s));
        assert!(s.independent(&r));
        assert!(!r.independent(&t));
        // The silent reaction is independent from everything.
        assert!(Reaction::empty_on(["y"]).independent(&t));
    }

    #[test]
    fn union_merges_independent_reactions() {
        // The example of the paper:
        // (y -> (t2,0)) ⊔ (x -> (t2,1)) = (y -> (t2,0), x -> (t2,1))
        let r = reaction(2, &[("y", Value::from(false))]);
        let s = reaction(2, &[("x", Value::from(true))]);
        let u = r.union(&s).expect("independent reactions");
        assert!(u.is_present("x") && u.is_present("y"));
        assert_eq!(u.tag(), Some(Tag::new(2)));

        let t = reaction(2, &[("y", Value::from(true))]);
        assert!(r.union(&t).is_none());
    }

    #[test]
    fn restriction_projects_domain_and_events() {
        let r = reaction(2, &[("y", Value::from(false)), ("x", Value::from(true))]);
        let rx = r.restrict(["x"]);
        assert!(rx.is_present("x"));
        assert!(!rx.domain_set().contains("y"));
    }

    #[test]
    fn to_behavior_produces_one_instant() {
        let r = reaction(5, &[("x", Value::from(7))]);
        let b = r.to_behavior();
        assert_eq!(b.stream("x").unwrap().len(), 1);
        assert_eq!(
            b.stream("x").unwrap().value_at(Tag::new(5)),
            Some(Value::from(7))
        );
    }

    #[test]
    fn display_shows_emptiness_or_events() {
        let e = Reaction::empty_on(["x"]);
        assert!(e.to_string().starts_with('Ø'));
        let r = reaction(1, &[("x", Value::from(true))]);
        assert!(r.to_string().contains("x:(t1,true)"));
    }
}
