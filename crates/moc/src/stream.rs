//! Signals as functions from chains of tags to values.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Tag, Value};

/// A signal of the polychronous model: a finite function from a chain of
/// tags to values.
///
/// The paper writes `T(s)` for the chain of tags of a signal `s` and
/// `min s` / `max s` for its extremal tags; these are exposed as
/// [`Stream::tags`], [`Stream::min_tag`] and [`Stream::max_tag`].
///
/// # Example
///
/// ```
/// use moc::{Stream, Tag, Value};
/// let mut s = Stream::new();
/// s.insert(Tag::new(1), Value::from(true));
/// s.insert(Tag::new(4), Value::from(false));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.value_at(Tag::new(4)), Some(Value::from(false)));
/// assert_eq!(s.values().collect::<Vec<_>>(), vec![Value::from(true), Value::from(false)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Stream {
    events: BTreeMap<Tag, Value>,
}

impl Stream {
    /// Creates the empty signal (written `∅` in the paper).
    pub fn new() -> Self {
        Stream {
            events: BTreeMap::new(),
        }
    }

    /// Creates a signal from an iterator of events.
    pub fn from_events<I>(events: I) -> Self
    where
        I: IntoIterator<Item = (Tag, Value)>,
    {
        Stream {
            events: events.into_iter().collect(),
        }
    }

    /// Creates a signal carrying `values` at consecutive tags starting at
    /// `start`.
    pub fn from_values<I, V>(start: Tag, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let mut events = BTreeMap::new();
        let mut tag = start;
        for v in values {
            events.insert(tag, v.into());
            tag = tag.next();
        }
        Stream { events }
    }

    /// Returns `true` when the signal carries no event.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Returns the number of events of the signal.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Adds (or overwrites) the event `(tag, value)`.
    pub fn insert(&mut self, tag: Tag, value: Value) {
        self.events.insert(tag, value);
    }

    /// Returns the value carried at `tag`, if any.
    pub fn value_at(&self, tag: Tag) -> Option<Value> {
        self.events.get(&tag).copied()
    }

    /// Returns `true` when the signal is present at `tag`.
    pub fn present_at(&self, tag: Tag) -> bool {
        self.events.contains_key(&tag)
    }

    /// The chain of tags of the signal, in increasing order (`T(s)`).
    pub fn tags(&self) -> impl Iterator<Item = Tag> + '_ {
        self.events.keys().copied()
    }

    /// The values of the signal in tag order — its *flow*.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        self.events.values().copied()
    }

    /// The flow of the signal collected into a vector.
    pub fn flow(&self) -> Vec<Value> {
        self.values().collect()
    }

    /// Iterates over the events of the signal in tag order.
    pub fn iter(&self) -> impl Iterator<Item = (Tag, Value)> + '_ {
        self.events.iter().map(|(t, v)| (*t, *v))
    }

    /// The minimal tag of the signal (`min s`), if the signal is not empty.
    pub fn min_tag(&self) -> Option<Tag> {
        self.events.keys().next().copied()
    }

    /// The maximal tag of the signal (`max s`), if the signal is not empty.
    pub fn max_tag(&self) -> Option<Tag> {
        self.events.keys().next_back().copied()
    }

    /// Returns the last value of the signal, if any.
    pub fn last_value(&self) -> Option<Value> {
        self.events.values().next_back().copied()
    }

    /// Returns the prefix of the signal restricted to tags `<= tag`.
    pub fn up_to(&self, tag: Tag) -> Stream {
        Stream {
            events: self.events.range(..=tag).map(|(t, v)| (*t, *v)).collect(),
        }
    }

    /// Returns `true` when `self` and `other` carry the same values in the
    /// same order (they are *flow-equal*), regardless of tags.
    pub fn same_flow(&self, other: &Stream) -> bool {
        self.len() == other.len() && self.values().eq(other.values())
    }
}

impl FromIterator<(Tag, Value)> for Stream {
    fn from_iter<I: IntoIterator<Item = (Tag, Value)>>(iter: I) -> Self {
        Stream::from_events(iter)
    }
}

impl Extend<(Tag, Value)> for Stream {
    fn extend<I: IntoIterator<Item = (Tag, Value)>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl fmt::Display for Stream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (t, v) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "({t},{v})")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Stream {
        Stream::from_events([
            (Tag::new(1), Value::from(true)),
            (Tag::new(2), Value::from(false)),
            (Tag::new(4), Value::from(true)),
        ])
    }

    #[test]
    fn tags_are_sorted() {
        let s = Stream::from_events([(Tag::new(4), Value::from(1)), (Tag::new(1), Value::from(2))]);
        assert_eq!(s.tags().collect::<Vec<_>>(), vec![Tag::new(1), Tag::new(4)]);
    }

    #[test]
    fn min_and_max_tags() {
        let s = sample();
        assert_eq!(s.min_tag(), Some(Tag::new(1)));
        assert_eq!(s.max_tag(), Some(Tag::new(4)));
        assert_eq!(Stream::new().max_tag(), None);
    }

    #[test]
    fn presence_and_values() {
        let s = sample();
        assert!(s.present_at(Tag::new(2)));
        assert!(!s.present_at(Tag::new(3)));
        assert_eq!(s.value_at(Tag::new(1)), Some(Value::from(true)));
        assert_eq!(s.value_at(Tag::new(3)), None);
    }

    #[test]
    fn from_values_uses_consecutive_tags() {
        let s = Stream::from_values(Tag::new(10), [1, 2, 3]);
        assert_eq!(
            s.tags().collect::<Vec<_>>(),
            vec![Tag::new(10), Tag::new(11), Tag::new(12)]
        );
        assert_eq!(
            s.flow(),
            vec![Value::from(1), Value::from(2), Value::from(3)]
        );
    }

    #[test]
    fn same_flow_ignores_tags() {
        let a = Stream::from_values(Tag::new(0), [true, false, true]);
        let b = Stream::from_events([
            (Tag::new(5), Value::from(true)),
            (Tag::new(9), Value::from(false)),
            (Tag::new(100), Value::from(true)),
        ]);
        assert!(a.same_flow(&b));
        let c = Stream::from_values(Tag::new(0), [true, true, true]);
        assert!(!a.same_flow(&c));
    }

    #[test]
    fn up_to_is_a_prefix() {
        let s = sample();
        let p = s.up_to(Tag::new(2));
        assert_eq!(p.len(), 2);
        assert_eq!(p.max_tag(), Some(Tag::new(2)));
    }

    #[test]
    fn last_value() {
        assert_eq!(sample().last_value(), Some(Value::from(true)));
        assert_eq!(Stream::new().last_value(), None);
    }

    #[test]
    fn display_lists_events() {
        let s = Stream::from_events([(Tag::new(1), Value::from(true))]);
        assert_eq!(s.to_string(), "(t1,true)");
    }
}
