//! Symbolic time tags.
//!
//! A tag denotes a period in time during which execution takes place.  Time
//! is a partial order on tags; within a single behavior the tags of a signal
//! form a *chain* (a totally ordered set).  For the purposes of this library
//! tags are drawn from a totally ordered, countable carrier (`u64`), which is
//! sufficient to represent any finite behavior up to order-isomorphism: the
//! stretching relation of the paper only ever compares tags through an
//! order-preserving bijection.

use std::fmt;

/// A symbolic instant of logical time.
///
/// `Tag`s are cheap, `Copy`, totally ordered values.  Two behaviors that use
/// different tag carriers are compared up to order-isomorphism (see
/// [`Behavior::clock_equivalent`](crate::Behavior::clock_equivalent)), so the
/// concrete numbers carried by tags are irrelevant to the semantics; only
/// their relative order matters.
///
/// # Example
///
/// ```
/// use moc::Tag;
/// let t1 = Tag::new(1);
/// let t2 = t1.next();
/// assert!(t1 < t2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag(u64);

impl Tag {
    /// The first usable tag.
    pub const ZERO: Tag = Tag(0);

    /// Creates a tag from its index in the global chain.
    pub fn new(index: u64) -> Self {
        Tag(index)
    }

    /// Returns the index of this tag in the global chain.
    pub fn index(self) -> u64 {
        self.0
    }

    /// Returns the tag immediately following this one.
    ///
    /// # Panics
    ///
    /// Panics if the tag index would overflow `u64`, which cannot happen for
    /// behaviors of realistic length.
    pub fn next(self) -> Tag {
        Tag(self.0.checked_add(1).expect("tag index overflow"))
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Tag {
    fn from(index: u64) -> Self {
        Tag(index)
    }
}

/// An iterator producing an unbounded chain of fresh tags.
///
/// # Example
///
/// ```
/// use moc::tag::TagSource;
/// let mut tags = TagSource::new();
/// let a = tags.fresh();
/// let b = tags.fresh();
/// assert!(a < b);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TagSource {
    next: u64,
}

impl TagSource {
    /// Creates a source starting at [`Tag::ZERO`].
    pub fn new() -> Self {
        TagSource { next: 0 }
    }

    /// Creates a source whose first tag strictly follows `tag`.
    pub fn after(tag: Tag) -> Self {
        TagSource { next: tag.0 + 1 }
    }

    /// Returns a fresh tag, strictly greater than all previously returned.
    pub fn fresh(&mut self) -> Tag {
        let t = Tag(self.next);
        self.next += 1;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_ordered_by_index() {
        assert!(Tag::new(0) < Tag::new(1));
        assert!(Tag::new(41) < Tag::new(42));
        assert_eq!(Tag::new(7), Tag::from(7));
    }

    #[test]
    fn next_is_strictly_increasing() {
        let t = Tag::new(10);
        assert!(t < t.next());
        assert_eq!(t.next().index(), 11);
    }

    #[test]
    fn display_is_symbolic() {
        assert_eq!(Tag::new(3).to_string(), "t3");
    }

    #[test]
    fn tag_source_is_monotone() {
        let mut src = TagSource::new();
        let mut prev = src.fresh();
        for _ in 0..100 {
            let next = src.fresh();
            assert!(prev < next);
            prev = next;
        }
    }

    #[test]
    fn tag_source_after_skips_past_tag() {
        let mut src = TagSource::after(Tag::new(5));
        assert_eq!(src.fresh(), Tag::new(6));
    }
}
