//! Processes as sets of behaviors.

use std::collections::BTreeSet;
use std::fmt;

use crate::{Behavior, Name};

/// A process of the polychronous model: a finite set of behaviors over the
/// same domain.
///
/// The denotational objects of the paper are (generally infinite) sets of
/// behaviors; for analysis and testing we manipulate finite enumerations of
/// finite behaviors, which is sufficient to exercise the definitions of
/// synchronous/asynchronous composition, isochrony and the diamond
/// properties on concrete traces.
///
/// # Example
///
/// ```
/// use moc::{Behavior, TraceSet, Tag, Value};
/// let mut b = Behavior::empty_on(["x"]);
/// b.insert_event("x", Tag::new(0), Value::from(true));
/// let p = TraceSet::from_behaviors(["x"], vec![b]);
/// assert_eq!(p.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSet {
    domain: BTreeSet<Name>,
    behaviors: Vec<Behavior>,
}

impl TraceSet {
    /// Creates an empty trace set over the domain `names`.
    pub fn new<I, N>(names: I) -> Self
    where
        I: IntoIterator<Item = N>,
        N: Into<Name>,
    {
        TraceSet {
            domain: names.into_iter().map(Into::into).collect(),
            behaviors: Vec::new(),
        }
    }

    /// Creates a trace set from a collection of behaviors.
    ///
    /// # Panics
    ///
    /// Panics if a behavior's domain is not exactly `names`.
    pub fn from_behaviors<I, N>(names: I, behaviors: Vec<Behavior>) -> Self
    where
        I: IntoIterator<Item = N>,
        N: Into<Name>,
    {
        let mut set = TraceSet::new(names);
        for b in behaviors {
            set.push(b);
        }
        set
    }

    /// The domain `V(p)` shared by every behavior of the set.
    pub fn domain(&self) -> impl Iterator<Item = &Name> + '_ {
        self.domain.iter()
    }

    /// The domain as an owned set.
    pub fn domain_set(&self) -> BTreeSet<Name> {
        self.domain.clone()
    }

    /// Adds a behavior to the set.
    ///
    /// # Panics
    ///
    /// Panics if the behavior's domain differs from the trace set's domain.
    pub fn push(&mut self, behavior: Behavior) {
        assert_eq!(
            behavior.domain_set(),
            self.domain,
            "behavior domain must match the trace-set domain"
        );
        self.behaviors.push(behavior);
    }

    /// The number of behaviors in the set.
    pub fn len(&self) -> usize {
        self.behaviors.len()
    }

    /// Returns `true` when the set contains no behavior.
    pub fn is_empty(&self) -> bool {
        self.behaviors.is_empty()
    }

    /// Iterates over the behaviors of the set.
    pub fn iter(&self) -> impl Iterator<Item = &Behavior> + '_ {
        self.behaviors.iter()
    }

    /// Returns `true` when the set contains a behavior clock-equivalent to
    /// `b`.
    pub fn contains_up_to_clock_equivalence(&self, b: &Behavior) -> bool {
        self.behaviors.iter().any(|c| c.clock_equivalent(b))
    }

    /// Returns `true` when the set contains a behavior flow-equivalent to
    /// `b`.
    pub fn contains_up_to_flow_equivalence(&self, b: &Behavior) -> bool {
        self.behaviors.iter().any(|c| c.flow_equivalent(b))
    }

    /// Tests **isochrony** of this trace set against another (Definition 3 of
    /// the paper): every behavior of `self` must be flow-equivalent to some
    /// behavior of `other` and conversely, i.e. the two sets denote the same
    /// flows.
    ///
    /// Typically `self` is a synchronous composition `p | q` and `other` an
    /// asynchronous composition `p ‖ q` restricted to the same domain.
    pub fn same_flows_as(&self, other: &TraceSet) -> bool {
        if self.domain != other.domain {
            return false;
        }
        self.behaviors
            .iter()
            .all(|b| other.contains_up_to_flow_equivalence(b))
            && other
                .behaviors
                .iter()
                .all(|b| self.contains_up_to_flow_equivalence(b))
    }

    /// Restricts every behavior of the set to `names`.
    pub fn restrict<'a, I>(&self, names: I) -> TraceSet
    where
        I: IntoIterator<Item = &'a str>,
    {
        let wanted: BTreeSet<&str> = names.into_iter().collect();
        let domain: BTreeSet<Name> = self
            .domain
            .iter()
            .filter(|n| wanted.contains(n.as_str()))
            .cloned()
            .collect();
        let behaviors = self
            .behaviors
            .iter()
            .map(|b| b.restrict(wanted.iter().copied()))
            .collect();
        TraceSet { domain, behaviors }
    }
}

impl fmt::Display for TraceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "process over {{{}}} with {} behaviors",
            join(&self.domain),
            self.len()
        )?;
        for (i, b) in self.behaviors.iter().enumerate() {
            writeln!(f, "-- behavior {i}")?;
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

fn join(names: &BTreeSet<Name>) -> String {
    names.iter().map(Name::as_str).collect::<Vec<_>>().join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Stream, Tag, Value};

    fn behavior(xs: &[(&str, &[bool])]) -> Behavior {
        let mut b = Behavior::new();
        for (name, values) in xs {
            b.insert_stream(
                *name,
                Stream::from_values(Tag::new(0), values.iter().copied()),
            );
        }
        b
    }

    #[test]
    fn push_checks_the_domain() {
        let mut p = TraceSet::new(["x"]);
        p.push(behavior(&[("x", &[true])]));
        assert_eq!(p.len(), 1);
    }

    #[test]
    #[should_panic(expected = "domain must match")]
    fn push_rejects_wrong_domain() {
        let mut p = TraceSet::new(["x"]);
        p.push(behavior(&[("y", &[true])]));
    }

    #[test]
    fn membership_up_to_equivalence() {
        let mut b = Behavior::new();
        b.insert_event("x", Tag::new(3), Value::from(true));
        let p = TraceSet::from_behaviors(["x"], vec![b]);

        let mut shifted = Behavior::new();
        shifted.insert_event("x", Tag::new(77), Value::from(true));
        assert!(p.contains_up_to_clock_equivalence(&shifted));
        assert!(p.contains_up_to_flow_equivalence(&shifted));

        let mut other = Behavior::new();
        other.insert_event("x", Tag::new(3), Value::from(false));
        assert!(!p.contains_up_to_flow_equivalence(&other));
    }

    #[test]
    fn same_flows_as_is_symmetric_and_domain_sensitive() {
        let p = TraceSet::from_behaviors(["x"], vec![behavior(&[("x", &[true, false])])]);
        let q = TraceSet::from_behaviors(["x"], vec![behavior(&[("x", &[true, false])])]);
        let r = TraceSet::from_behaviors(["x"], vec![behavior(&[("x", &[false, true])])]);
        assert!(p.same_flows_as(&q));
        assert!(q.same_flows_as(&p));
        assert!(!p.same_flows_as(&r));

        let s = TraceSet::from_behaviors(["y"], vec![behavior(&[("y", &[true, false])])]);
        assert!(!p.same_flows_as(&s));
    }

    #[test]
    fn restriction_projects_all_behaviors() {
        let p = TraceSet::from_behaviors(
            ["x", "y"],
            vec![behavior(&[("x", &[true]), ("y", &[false])])],
        );
        let px = p.restrict(["x"]);
        assert_eq!(px.domain_set().len(), 1);
        assert_eq!(px.iter().next().unwrap().domain_set().len(), 1);
    }
}
