//! Values carried by signals.

use std::fmt;

/// A value carried by an event of a signal.
///
/// The Signal kernel of the paper only needs booleans (for clocks, alternating
/// flags and sampling conditions) and integers (for the arithmetic of the
/// producer/consumer and LTTA examples).  `Value` is a small, `Copy`-able sum
/// of the two.
///
/// # Example
///
/// ```
/// use moc::Value;
/// let v = Value::from(3) ;
/// assert_eq!(v.as_int(), Some(3));
/// assert!(Value::from(true).as_bool().unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A boolean value.
    Bool(bool),
    /// A signed integer value.
    Int(i64),
}

impl Value {
    /// Returns the boolean payload, if this value is a boolean.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            Value::Int(_) => None,
        }
    }

    /// Returns the integer payload, if this value is an integer.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            Value::Bool(_) => None,
        }
    }

    /// Returns `true` when the value is the boolean `true`.
    pub fn is_true(self) -> bool {
        self == Value::Bool(true)
    }

    /// Returns `true` when the value is the boolean `false`.
    pub fn is_false(self) -> bool {
        self == Value::Bool(false)
    }

    /// Returns the truthiness of the value: booleans map to themselves and
    /// integers to `value != 0`.
    pub fn truthy(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Int(i) => i != 0,
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Bool(false)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(false).as_bool(), Some(false));
        assert_eq!(Value::from(17).as_int(), Some(17));
        assert_eq!(Value::from(17i64).as_int(), Some(17));
        assert_eq!(Value::from(true).as_int(), None);
        assert_eq!(Value::from(1).as_bool(), None);
    }

    #[test]
    fn truthiness() {
        assert!(Value::from(true).truthy());
        assert!(!Value::from(false).truthy());
        assert!(Value::from(3).truthy());
        assert!(!Value::from(0).truthy());
    }

    #[test]
    fn is_true_and_is_false_are_strict() {
        assert!(Value::from(true).is_true());
        assert!(!Value::from(1).is_true());
        assert!(Value::from(false).is_false());
        assert!(!Value::from(0).is_false());
    }

    #[test]
    fn display_matches_payload() {
        assert_eq!(Value::from(true).to_string(), "true");
        assert_eq!(Value::from(-4).to_string(), "-4");
    }

    #[test]
    fn default_is_false() {
        assert_eq!(Value::default(), Value::Bool(false));
    }
}
