//! Abstract syntax of Signal processes.
//!
//! A process (`P`, `Q`) is the synchronous composition of equations on
//! signals, possibly restricting the scope of local signals:
//!
//! ```text
//! P, Q ::= x := e  |  clock constraint  |  P | Q  |  P / x
//! ```
//!
//! Expressions `e` combine the four Signal primitives — functional
//! operators, the delay `$`, the sampling `when` and the deterministic merge
//! `default` — plus the derived `cell` operator used by the paper's
//! controller.  Nested expressions are flattened into the four-primitive
//! kernel by [`Process::normalize`](crate::kernel).

use std::fmt;

use crate::{Name, SignalError, Value};

/// A unary operator of the functional kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Boolean negation.
    Not,
    /// Integer negation.
    Neg,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Not => write!(f, "not"),
            UnOp::Neg => write!(f, "-"),
        }
    }
}

/// A binary operator of the functional kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean exclusive or.
    Xor,
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division.
    Div,
    /// Equality test.
    Eq,
    /// Disequality test.
    Ne,
    /// Strictly-less-than test.
    Lt,
    /// Less-or-equal test.
    Le,
    /// Strictly-greater-than test.
    Gt,
    /// Greater-or-equal test.
    Ge,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "/=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A signal expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A constant.  Constants are present at whichever clock the context
    /// requires.
    Const(Value),
    /// A reference to a signal.
    Var(Name),
    /// The delay `body $ init v`: initially `v`, then the previous value of
    /// `body`.  Input and output are synchronous.
    Pre {
        /// The delayed expression.
        body: Box<Expr>,
        /// The initial value emitted at the first instant.
        init: Value,
    },
    /// The sampling `body when cond`: present (with the value of `body`) iff
    /// both operands are present and `cond` is true.
    When {
        /// The sampled expression.
        body: Box<Expr>,
        /// The boolean condition.
        cond: Box<Expr>,
    },
    /// The deterministic merge `left default right`: the value of `left`
    /// when present, otherwise the value of `right`.
    Default {
        /// Priority operand.
        left: Box<Expr>,
        /// Fallback operand.
        right: Box<Expr>,
    },
    /// The derived memory `body cell clock init v`: present whenever `body`
    /// or `clock` is present, carrying the value of `body` when present and
    /// the last value of `body` otherwise.
    Cell {
        /// The memorized expression.
        body: Box<Expr>,
        /// The clock at which the memory is read.
        clock: Box<Expr>,
        /// Initial content of the memory.
        init: Value,
    },
    /// A unary functional operator.
    Unary {
        /// The operator.
        op: UnOp,
        /// Its operand.
        arg: Box<Expr>,
    },
    /// A binary functional operator (operands are synchronous).
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
}

impl Expr {
    /// A constant expression.
    pub fn cst(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// A reference to the signal `name`.
    pub fn var(name: impl Into<Name>) -> Expr {
        Expr::Var(name.into())
    }

    /// The delayed expression `self $ init v` (`self pre v` in the paper).
    pub fn pre(self, init: impl Into<Value>) -> Expr {
        Expr::Pre {
            body: Box::new(self),
            init: init.into(),
        }
    }

    /// The sampled expression `self when cond`.
    pub fn when(self, cond: Expr) -> Expr {
        Expr::When {
            body: Box::new(self),
            cond: Box::new(cond),
        }
    }

    /// The merged expression `self default other`.
    pub fn default(self, other: Expr) -> Expr {
        Expr::Default {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// The memorized expression `self cell clock init v`.
    pub fn cell(self, clock: Expr, init: impl Into<Value>) -> Expr {
        Expr::Cell {
            body: Box::new(self),
            clock: Box::new(clock),
            init: init.into(),
        }
    }

    /// Boolean negation.
    // The builder DSL mirrors the Signal operator names; `not` consumes and
    // rebuilds an expression rather than implementing `ops::Not`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            arg: Box::new(self),
        }
    }

    /// Applies a binary operator.
    pub fn binary(self, op: BinOp, other: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Boolean conjunction.
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinOp::And, other)
    }

    /// Boolean disjunction.
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinOp::Or, other)
    }

    /// Integer addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        self.binary(BinOp::Add, other)
    }

    /// Equality test.
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinOp::Eq, other)
    }

    /// Disequality test.
    pub fn ne(self, other: Expr) -> Expr {
        self.binary(BinOp::Ne, other)
    }

    /// Iterates over the free signal names of the expression.
    pub fn free_vars(&self, acc: &mut Vec<Name>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(n) => acc.push(n.clone()),
            Expr::Pre { body, .. } => body.free_vars(acc),
            Expr::When { body, cond } => {
                body.free_vars(acc);
                cond.free_vars(acc);
            }
            Expr::Default { left, right } => {
                left.free_vars(acc);
                right.free_vars(acc);
            }
            Expr::Cell { body, clock, .. } => {
                body.free_vars(acc);
                clock.free_vars(acc);
            }
            Expr::Unary { arg, .. } => arg.free_vars(acc),
            Expr::Binary { left, right, .. } => {
                left.free_vars(acc);
                right.free_vars(acc);
            }
        }
    }
}

/// A clock expression appearing in explicit clock constraints.
///
/// `^x` is the clock of `x` (the instants where `x` is present), `[x]` and
/// `[not x]` the sub-clocks where the boolean signal `x` is true or false.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ClockAst {
    /// The empty clock `^0`.
    Zero,
    /// The clock `^x` of a signal.
    Of(Name),
    /// The true-sampling `[x]` of a boolean signal.
    WhenTrue(Name),
    /// The false-sampling `[not x]` of a boolean signal.
    WhenFalse(Name),
    /// Clock conjunction (intersection of instants).
    And(Box<ClockAst>, Box<ClockAst>),
    /// Clock disjunction (union of instants).
    Or(Box<ClockAst>, Box<ClockAst>),
    /// Clock difference (instants of the left operand not in the right).
    Diff(Box<ClockAst>, Box<ClockAst>),
}

impl ClockAst {
    /// The clock `^x` of the signal `name`.
    pub fn of(name: impl Into<Name>) -> ClockAst {
        ClockAst::Of(name.into())
    }

    /// The sub-clock `[x]` where the boolean signal `name` is true.
    pub fn when_true(name: impl Into<Name>) -> ClockAst {
        ClockAst::WhenTrue(name.into())
    }

    /// The sub-clock `[not x]` where the boolean signal `name` is false.
    pub fn when_false(name: impl Into<Name>) -> ClockAst {
        ClockAst::WhenFalse(name.into())
    }

    /// Clock conjunction.
    pub fn and(self, other: ClockAst) -> ClockAst {
        ClockAst::And(Box::new(self), Box::new(other))
    }

    /// Clock disjunction.
    pub fn or(self, other: ClockAst) -> ClockAst {
        ClockAst::Or(Box::new(self), Box::new(other))
    }

    /// Clock difference.
    pub fn diff(self, other: ClockAst) -> ClockAst {
        ClockAst::Diff(Box::new(self), Box::new(other))
    }

    /// Collects the signal names mentioned by the clock expression.
    pub fn free_vars(&self, acc: &mut Vec<Name>) {
        match self {
            ClockAst::Zero => {}
            ClockAst::Of(n) | ClockAst::WhenTrue(n) | ClockAst::WhenFalse(n) => {
                acc.push(n.clone());
            }
            ClockAst::And(a, b) | ClockAst::Or(a, b) | ClockAst::Diff(a, b) => {
                a.free_vars(acc);
                b.free_vars(acc);
            }
        }
    }
}

impl fmt::Display for ClockAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockAst::Zero => write!(f, "^0"),
            ClockAst::Of(n) => write!(f, "^{n}"),
            ClockAst::WhenTrue(n) => write!(f, "[{n}]"),
            ClockAst::WhenFalse(n) => write!(f, "[not {n}]"),
            ClockAst::And(a, b) => write!(f, "({a} ^* {b})"),
            ClockAst::Or(a, b) => write!(f, "({a} ^+ {b})"),
            ClockAst::Diff(a, b) => write!(f, "({a} ^- {b})"),
        }
    }
}

/// A statement of a Signal process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Process {
    /// The equation `target := rhs`.
    Define {
        /// The defined signal.
        target: Name,
        /// Its defining expression.
        rhs: Expr,
    },
    /// An explicit clock constraint `left = right` between two clock
    /// expressions (e.g. `^x = [t]` in the `flip` process of the paper).
    Constraint {
        /// Left clock expression.
        left: ClockAst,
        /// Right clock expression.
        right: ClockAst,
    },
    /// Synchronous composition `P | Q`.
    Compose(Vec<Process>),
    /// Scope restriction `P / x1, ..., xn`.
    Hide {
        /// The restricted sub-process.
        body: Box<Process>,
        /// The local signals whose scope is restricted to `body`.
        locals: Vec<Name>,
    },
}

impl Process {
    /// The composition of a collection of processes.
    pub fn compose<I: IntoIterator<Item = Process>>(parts: I) -> Process {
        let parts: Vec<Process> = parts.into_iter().collect();
        Process::Compose(parts)
    }

    /// The synchronization constraint `^left = ^right` between two signals.
    pub fn synchro(left: impl Into<Name>, right: impl Into<Name>) -> Process {
        Process::Constraint {
            left: ClockAst::of(left),
            right: ClockAst::of(right),
        }
    }
}

/// A named process definition with an explicit input/output interface.
///
/// The interface of the paper's processes (e.g. `x = filter(y)`) is recorded
/// so that instantiation, code generation and simulation know which free
/// signals are inputs and which are outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessDef {
    /// The process name (`filter`, `buffer`, ...).
    pub name: String,
    /// Declared input signals.
    pub inputs: Vec<Name>,
    /// Declared output signals.
    pub outputs: Vec<Name>,
    /// The body of the process.
    pub body: Process,
}

impl ProcessDef {
    /// Creates a process definition.
    pub fn new(
        name: impl Into<String>,
        inputs: impl IntoIterator<Item = impl Into<Name>>,
        outputs: impl IntoIterator<Item = impl Into<Name>>,
        body: Process,
    ) -> Self {
        ProcessDef {
            name: name.into(),
            inputs: inputs.into_iter().map(Into::into).collect(),
            outputs: outputs.into_iter().map(Into::into).collect(),
            body,
        }
    }

    /// Normalizes the definition into the four-primitive kernel form used by
    /// the clock calculus and the code generator.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::MultipleDefinitions`] if a signal is defined
    /// twice.
    pub fn normalize(&self) -> Result<crate::KernelProcess, SignalError> {
        crate::kernel::normalize(self)
    }

    /// Renames every signal of the definition with a `prefix_` prefix except
    /// the ones listed in `keep`, and renames the process itself.
    ///
    /// This is how separate *instances* of library processes (two buffers in
    /// the LTTA bus, two schedulers in the controller) are given disjoint
    /// namespaces before composition.
    pub fn instantiate(&self, instance: &str, keep: &[(&str, &str)]) -> ProcessDef {
        let rename = |n: &Name| -> Name {
            for (old, new) in keep {
                if n.as_str() == *old {
                    return Name::from(*new);
                }
            }
            Name::from(format!("{instance}_{n}"))
        };
        ProcessDef {
            name: instance.to_string(),
            inputs: self.inputs.iter().map(&rename).collect(),
            outputs: self.outputs.iter().map(&rename).collect(),
            body: rename_process(&self.body, &rename),
        }
    }
}

fn rename_process(p: &Process, rename: &impl Fn(&Name) -> Name) -> Process {
    match p {
        Process::Define { target, rhs } => Process::Define {
            target: rename(target),
            rhs: rename_expr(rhs, rename),
        },
        Process::Constraint { left, right } => Process::Constraint {
            left: rename_clock(left, rename),
            right: rename_clock(right, rename),
        },
        Process::Compose(parts) => {
            Process::Compose(parts.iter().map(|q| rename_process(q, rename)).collect())
        }
        Process::Hide { body, locals } => Process::Hide {
            body: Box::new(rename_process(body, rename)),
            locals: locals.iter().map(rename).collect(),
        },
    }
}

fn rename_clock(c: &ClockAst, rename: &impl Fn(&Name) -> Name) -> ClockAst {
    match c {
        ClockAst::Zero => ClockAst::Zero,
        ClockAst::Of(n) => ClockAst::Of(rename(n)),
        ClockAst::WhenTrue(n) => ClockAst::WhenTrue(rename(n)),
        ClockAst::WhenFalse(n) => ClockAst::WhenFalse(rename(n)),
        ClockAst::And(a, b) => ClockAst::And(
            Box::new(rename_clock(a, rename)),
            Box::new(rename_clock(b, rename)),
        ),
        ClockAst::Or(a, b) => ClockAst::Or(
            Box::new(rename_clock(a, rename)),
            Box::new(rename_clock(b, rename)),
        ),
        ClockAst::Diff(a, b) => ClockAst::Diff(
            Box::new(rename_clock(a, rename)),
            Box::new(rename_clock(b, rename)),
        ),
    }
}

fn rename_expr(e: &Expr, rename: &impl Fn(&Name) -> Name) -> Expr {
    match e {
        Expr::Const(v) => Expr::Const(*v),
        Expr::Var(n) => Expr::Var(rename(n)),
        Expr::Pre { body, init } => Expr::Pre {
            body: Box::new(rename_expr(body, rename)),
            init: *init,
        },
        Expr::When { body, cond } => Expr::When {
            body: Box::new(rename_expr(body, rename)),
            cond: Box::new(rename_expr(cond, rename)),
        },
        Expr::Default { left, right } => Expr::Default {
            left: Box::new(rename_expr(left, rename)),
            right: Box::new(rename_expr(right, rename)),
        },
        Expr::Cell { body, clock, init } => Expr::Cell {
            body: Box::new(rename_expr(body, rename)),
            clock: Box::new(rename_expr(clock, rename)),
            init: *init,
        },
        Expr::Unary { op, arg } => Expr::Unary {
            op: *op,
            arg: Box::new(rename_expr(arg, rename)),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rename_expr(left, rename)),
            right: Box::new(rename_expr(right, rename)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_combinators_build_the_expected_tree() {
        let e = Expr::cst(true).when(Expr::var("y").ne(Expr::var("z")));
        match e {
            Expr::When { body, cond } => {
                assert_eq!(*body, Expr::Const(Value::Bool(true)));
                match *cond {
                    Expr::Binary { op, .. } => assert_eq!(op, BinOp::Ne),
                    other => panic!("unexpected condition {other:?}"),
                }
            }
            other => panic!("unexpected expression {other:?}"),
        }
    }

    #[test]
    fn free_vars_collects_every_signal_reference() {
        let e = Expr::var("y")
            .default(Expr::var("r").pre(false))
            .when(Expr::var("c"));
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        let names: Vec<&str> = vars.iter().map(Name::as_str).collect();
        assert_eq!(names, vec!["y", "r", "c"]);
    }

    #[test]
    fn clock_ast_display_uses_signal_notation() {
        let c = ClockAst::of("x").or(ClockAst::when_false("t"));
        assert_eq!(c.to_string(), "(^x ^+ [not t])");
    }

    #[test]
    fn clock_ast_free_vars() {
        let c = ClockAst::of("x").diff(ClockAst::when_true("y"));
        let mut vars = Vec::new();
        c.free_vars(&mut vars);
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn synchro_builds_a_constraint() {
        match Process::synchro("x", "y") {
            Process::Constraint { left, right } => {
                assert_eq!(left, ClockAst::of("x"));
                assert_eq!(right, ClockAst::of("y"));
            }
            other => panic!("unexpected process {other:?}"),
        }
    }

    #[test]
    fn instantiation_prefixes_every_name_except_kept_ones() {
        let def = ProcessDef::new(
            "filter",
            ["y"],
            ["x"],
            Process::compose([
                Process::Define {
                    target: Name::from("x"),
                    rhs: Expr::cst(true).when(Expr::var("y").ne(Expr::var("z"))),
                },
                Process::Define {
                    target: Name::from("z"),
                    rhs: Expr::var("y").pre(true),
                },
            ]),
        );
        let inst = def.instantiate("f1", &[("y", "input"), ("x", "output")]);
        assert_eq!(inst.name, "f1");
        assert_eq!(inst.inputs, vec![Name::from("input")]);
        assert_eq!(inst.outputs, vec![Name::from("output")]);
        // The local z is prefixed.
        let mut vars = Vec::new();
        if let Process::Compose(parts) = &inst.body {
            for p in parts {
                if let Process::Define { target, rhs } = p {
                    vars.push(target.clone());
                    rhs.free_vars(&mut vars);
                }
            }
        }
        assert!(vars.iter().any(|n| n.as_str() == "f1_z"));
        assert!(vars.iter().all(|n| n.as_str() != "z"));
    }
}
