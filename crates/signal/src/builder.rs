//! Fluent construction of Signal process definitions.

use crate::ast::{ClockAst, Expr, Process, ProcessDef};
use crate::vars;
use crate::{Name, SignalError};

/// A fluent builder for [`ProcessDef`]s.
///
/// Statements are accumulated in order; the interface can be declared
/// explicitly with [`ProcessBuilder::input`] / [`ProcessBuilder::output`], or
/// left implicit, in which case free signals become inputs and defined
/// visible signals become outputs.
///
/// # Example
///
/// ```
/// use signal_lang::{ProcessBuilder, Expr};
///
/// let buffer_flip = ProcessBuilder::new("flip")
///     .define("s", Expr::var("t").pre(true))
///     .define("t", Expr::var("s").not())
///     .constraint_eq("x", signal_lang::ClockAst::when_true("t"))
///     .constraint_eq("y", signal_lang::ClockAst::when_false("t"))
///     .hide(["s", "t"])
///     .build()?;
/// assert_eq!(buffer_flip.name, "flip");
/// # Ok::<(), signal_lang::SignalError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProcessBuilder {
    name: String,
    statements: Vec<Process>,
    hidden: Vec<Name>,
    inputs: Vec<Name>,
    outputs: Vec<Name>,
}

impl ProcessBuilder {
    /// Starts building a process called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProcessBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds the equation `target := rhs`.
    pub fn define(mut self, target: impl Into<Name>, rhs: Expr) -> Self {
        self.statements.push(Process::Define {
            target: target.into(),
            rhs,
        });
        self
    }

    /// Adds the clock constraint `^signal = clock`.
    pub fn constraint_eq(mut self, signal: impl Into<Name>, clock: ClockAst) -> Self {
        self.statements.push(Process::Constraint {
            left: ClockAst::of(signal),
            right: clock,
        });
        self
    }

    /// Adds an arbitrary clock constraint `left = right`.
    pub fn constraint(mut self, left: ClockAst, right: ClockAst) -> Self {
        self.statements.push(Process::Constraint { left, right });
        self
    }

    /// Adds the synchronization constraint `^a = ^b`.
    pub fn synchro(mut self, a: impl Into<Name>, b: impl Into<Name>) -> Self {
        self.statements.push(Process::synchro(a, b));
        self
    }

    /// Adds an already-built sub-process.
    pub fn sub_process(mut self, p: Process) -> Self {
        self.statements.push(p);
        self
    }

    /// Inlines the body of another process definition (its interface
    /// declarations are ignored; names are used as-is).
    pub fn include(mut self, def: &ProcessDef) -> Self {
        self.statements.push(def.body.clone());
        self
    }

    /// Restricts the scope of `names` to this process.
    pub fn hide<I, N>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = N>,
        N: Into<Name>,
    {
        self.hidden.extend(names.into_iter().map(Into::into));
        self
    }

    /// Declares an input signal.
    pub fn input(mut self, name: impl Into<Name>) -> Self {
        self.inputs.push(name.into());
        self
    }

    /// Declares an output signal.
    pub fn output(mut self, name: impl Into<Name>) -> Self {
        self.outputs.push(name.into());
        self
    }

    /// Declares several input signals.
    pub fn inputs<I, N>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = N>,
        N: Into<Name>,
    {
        self.inputs.extend(names.into_iter().map(Into::into));
        self
    }

    /// Declares several output signals.
    pub fn outputs<I, N>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = N>,
        N: Into<Name>,
    {
        self.outputs.extend(names.into_iter().map(Into::into));
        self
    }

    /// Builds the process definition.
    ///
    /// When no interface was declared explicitly, the free signals of the
    /// body become inputs and the visible defined signals become outputs.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::HiddenUndefined`] if a hidden signal is never
    /// defined by the body.
    pub fn build(self) -> Result<ProcessDef, SignalError> {
        let body = Process::Compose(self.statements);
        let body = if self.hidden.is_empty() {
            body
        } else {
            for h in &self.hidden {
                if !vars::defined_signals(&body).contains(h) {
                    return Err(SignalError::HiddenUndefined(h.clone()));
                }
            }
            Process::Hide {
                body: Box::new(body),
                locals: self.hidden.clone(),
            }
        };
        let inputs = if self.inputs.is_empty() {
            vars::free_signals(&body).into_iter().collect()
        } else {
            self.inputs
        };
        let outputs = if self.outputs.is_empty() {
            let defined = vars::defined_signals(&body);
            let hidden: std::collections::BTreeSet<Name> = self.hidden.into_iter().collect();
            defined
                .into_iter()
                .filter(|n| !hidden.contains(n))
                .collect()
        } else {
            self.outputs
        };
        Ok(ProcessDef {
            name: self.name,
            inputs,
            outputs,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_interface_is_inferred_from_the_body() {
        let def = ProcessBuilder::new("inc")
            .define("x", Expr::var("a").add(Expr::cst(1)))
            .build()
            .expect("builds");
        assert_eq!(def.inputs, vec![Name::from("a")]);
        assert_eq!(def.outputs, vec![Name::from("x")]);
    }

    #[test]
    fn explicit_interface_wins_over_inference() {
        let def = ProcessBuilder::new("inc")
            .define("x", Expr::var("a").add(Expr::cst(1)))
            .input("a")
            .output("x")
            .build()
            .expect("builds");
        assert_eq!(def.inputs.len(), 1);
        assert_eq!(def.outputs.len(), 1);
    }

    #[test]
    fn hidden_signals_are_not_outputs() {
        let def = ProcessBuilder::new("filter")
            .define("x", Expr::cst(true).when(Expr::var("y").ne(Expr::var("z"))))
            .define("z", Expr::var("y").pre(true))
            .hide(["z"])
            .build()
            .expect("builds");
        assert_eq!(def.outputs, vec![Name::from("x")]);
        assert_eq!(def.inputs, vec![Name::from("y")]);
    }

    #[test]
    fn hiding_an_undefined_signal_is_an_error() {
        let err = ProcessBuilder::new("oops")
            .define("x", Expr::var("y"))
            .hide(["nope"])
            .build()
            .unwrap_err();
        assert_eq!(err, SignalError::HiddenUndefined(Name::from("nope")));
    }

    #[test]
    fn synchro_and_constraints_are_recorded() {
        let def = ProcessBuilder::new("c")
            .synchro("x", "y")
            .constraint_eq("x", ClockAst::when_true("t"))
            .inputs(["x", "y", "t"])
            .build()
            .expect("builds");
        match &def.body {
            Process::Compose(parts) => assert_eq!(parts.len(), 2),
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn include_embeds_another_definition() {
        let inner = ProcessBuilder::new("inner")
            .define("x", Expr::var("y"))
            .build()
            .unwrap();
        let outer = ProcessBuilder::new("outer")
            .include(&inner)
            .define("z", Expr::var("x"))
            .build()
            .unwrap();
        let k = outer.normalize().unwrap();
        assert!(k.definition_of("x").is_some());
        assert!(k.definition_of("z").is_some());
    }
}
