//! Errors reported while building, parsing or normalizing Signal processes.

use std::fmt;

use crate::Name;

/// An error produced by the Signal front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignalError {
    /// A signal is defined by more than one equation.
    MultipleDefinitions(Name),
    /// A hidden (restricted) signal is never defined inside the process.
    HiddenUndefined(Name),
    /// A delay (`$`/`pre`) was applied to an expression that has no
    /// syntactic initial value.
    MissingInit(Name),
    /// The parser found an unexpected token.
    Parse {
        /// Line of the offending token (1-based).
        line: usize,
        /// Column of the offending token (1-based).
        column: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A named process was referenced but never declared.
    UnknownProcess(String),
    /// An instantiation supplied the wrong number of arguments.
    ArityMismatch {
        /// The instantiated process name.
        process: String,
        /// Number of arguments expected.
        expected: usize,
        /// Number of arguments found.
        found: usize,
    },
}

impl fmt::Display for SignalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalError::MultipleDefinitions(n) => {
                write!(f, "signal {n} is defined by more than one equation")
            }
            SignalError::HiddenUndefined(n) => {
                write!(f, "hidden signal {n} is never defined")
            }
            SignalError::MissingInit(n) => {
                write!(f, "delay defining {n} is missing an initial value")
            }
            SignalError::Parse {
                line,
                column,
                message,
            } => {
                write!(f, "parse error at {line}:{column}: {message}")
            }
            SignalError::UnknownProcess(name) => {
                write!(f, "unknown process {name}")
            }
            SignalError::ArityMismatch {
                process,
                expected,
                found,
            } => {
                write!(
                    f,
                    "process {process} expects {expected} arguments, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for SignalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SignalError::MultipleDefinitions(Name::from("x"));
        assert_eq!(
            e.to_string(),
            "signal x is defined by more than one equation"
        );
        let e = SignalError::Parse {
            line: 3,
            column: 7,
            message: "expected ':='".into(),
        };
        assert!(e.to_string().contains("3:7"));
        let e = SignalError::ArityMismatch {
            process: "buffer".into(),
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("buffer"));
    }
}
