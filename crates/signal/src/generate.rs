//! Seeded random generation of endochronous Signal processes.
//!
//! The paper's static criterion accepts any composition of *endochronous*
//! components whose composition is well-clocked and acyclic.  To exercise
//! the analyses and the code generator beyond the handful of hand-written
//! paper processes, this module generates random — but endochronous by
//! construction — processes: a single boolean input signal paces the whole
//! process, every other signal is sampled (directly or transitively) from
//! it, following the idioms of the paper's `producer` (explicit sampling
//! constraints over self-referential delays) and `consumer` (merges of
//! complementary samplings).
//!
//! Generation is deterministic in the seed, so property-based tests and
//! benchmarks can reproduce any failing instance.
//!
//! ```
//! use signal_lang::generate;
//!
//! let def = generate::endochronous("gen", 8, 42);
//! assert_eq!(def.inputs.len(), 1);
//! assert!(def.normalize().is_ok());
//! ```

use crate::ast::{ClockAst, Expr, ProcessDef};
use crate::builder::ProcessBuilder;
use crate::Name;

/// A small deterministic pseudo-random number generator (SplitMix64), kept
/// local so the crate does not need a `rand` dependency.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound` must be non-zero).
    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next_u64() % 100 < percent
    }
}

/// The kind of signal a generation step produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeKind {
    /// A boolean signal alternating between `true` and `false` at its clock.
    BoolAlternator,
    /// An integer counter incremented at its clock.
    IntCounter,
    /// A boolean signal holding the previous value of its parent.
    BoolDelay,
}

/// Generates a random endochronous process.
///
/// The process has exactly one (boolean) input signal named `<name>_c`; all
/// other signals are defined, their clocks sampled from the input through a
/// randomly shaped tree of `[x]` / `[not x]` samplings, with occasional
/// merges of two complementary samplings (which exercise the hierarchy's
/// least-upper-bound rule).  `size` is the number of generated signals
/// (clamped to at least 1); `seed` makes the generation reproducible.
///
/// The result is endochronous by construction: its clock hierarchy has the
/// single root `^<name>_c`.
pub fn endochronous(name: &str, size: usize, seed: u64) -> ProcessDef {
    let mut rng = SplitMix64::new(seed ^ 0x5851_f42d_4c95_7f2d);
    let size = size.max(1);
    let root = Name::from(format!("{name}_c"));
    let mut builder = ProcessBuilder::new(name).input(root.clone());

    // Boolean signals that may pace further samplings, starting with the
    // root input.  Each entry also records the signal it was sampled from
    // and the polarity, so complementary siblings can be merged.
    let mut booleans: Vec<Name> = vec![root];
    let mut outputs: Vec<Name> = Vec::new();
    let mut sampled: Vec<(Name, Name, bool)> = Vec::new();

    for k in 0..size {
        let parent = booleans[rng.below(booleans.len())].clone();
        let positive = rng.chance(50);
        let clock = if positive {
            ClockAst::when_true(parent.clone())
        } else {
            ClockAst::when_false(parent.clone())
        };
        let signal = Name::from(format!("{name}_s{k}"));
        let kind = match rng.below(3) {
            0 => NodeKind::BoolAlternator,
            1 => NodeKind::IntCounter,
            _ => NodeKind::BoolDelay,
        };
        builder = match kind {
            NodeKind::BoolAlternator => {
                builder.define(signal.clone(), Expr::var(signal.clone()).pre(false).not())
            }
            NodeKind::IntCounter => builder.define(
                signal.clone(),
                Expr::var(signal.clone()).pre(0).add(Expr::cst(1)),
            ),
            NodeKind::BoolDelay => builder.define(
                signal.clone(),
                Expr::var(signal.clone()).pre(positive).not(),
            ),
        };
        builder = builder.constraint_eq(signal.clone(), clock);
        if kind != NodeKind::IntCounter {
            booleans.push(signal.clone());
            sampled.push((signal.clone(), parent.clone(), positive));
        }
        outputs.push(signal.clone());

        // Occasionally merge two complementary samplings of the same parent
        // back together: the merged signal lives in the parent's clock
        // class, which exercises rule 3 of the hierarchy construction.
        if kind != NodeKind::IntCounter && rng.chance(30) {
            let complement = sampled
                .iter()
                .find(|(s, p, pol)| *p == parent && *pol != positive && *s != signal)
                .map(|(s, _, _)| s.clone());
            if let Some(other) = complement {
                let merged = Name::from(format!("{name}_m{k}"));
                builder = builder.define(
                    merged.clone(),
                    Expr::var(signal.clone()).default(Expr::var(other)),
                );
                outputs.push(merged);
            }
        }
    }

    for out in &outputs {
        builder = builder.output(out.clone());
    }
    builder
        .build()
        .expect("generated processes are well-formed by construction")
}

/// Generates `count` independent endochronous components (disjoint signal
/// name spaces), each of `size` signals, for compositional workloads.
///
/// Their composition is weakly hierarchic: every component is endochronous
/// and they share no signal, so the composition is trivially well-clocked
/// and acyclic.
pub fn component_batch(count: usize, size: usize, seed: u64) -> Vec<ProcessDef> {
    (0..count)
        .map(|i| endochronous(&format!("gen{i}"), size, seed.wrapping_add(i as u64)))
        .collect()
}

/// The single input signal of a process generated by [`endochronous`].
pub fn input_of(def: &ProcessDef) -> &Name {
    &def.inputs[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = endochronous("g", 10, 7);
        let b = endochronous("g", 10, 7);
        assert_eq!(format!("{:?}", a.body), format!("{:?}", b.body));
        let c = endochronous("g", 10, 8);
        assert_ne!(format!("{:?}", a.body), format!("{:?}", c.body));
    }

    #[test]
    fn generated_processes_normalize_and_have_one_input() {
        for seed in 0..20 {
            let def = endochronous("g", 12, seed);
            assert_eq!(def.inputs.len(), 1);
            assert_eq!(input_of(&def).as_str(), "g_c");
            let kernel = def.normalize().expect("normalizes");
            assert!(kernel.equations().len() >= 12);
        }
    }

    #[test]
    fn batches_use_disjoint_name_spaces() {
        let batch = component_batch(3, 5, 11);
        assert_eq!(batch.len(), 3);
        let mut all = std::collections::BTreeSet::new();
        for def in &batch {
            let kernel = def.normalize().unwrap();
            for s in kernel.signals() {
                assert!(
                    all.insert(s.clone()),
                    "signal {s} appears in two components"
                );
            }
        }
    }

    #[test]
    fn size_is_clamped_to_at_least_one_signal() {
        let def = endochronous("g", 0, 3);
        assert!(!def.outputs.is_empty());
    }
}
