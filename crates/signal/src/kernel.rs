//! Normalization of Signal processes into the four-primitive kernel.
//!
//! The clock calculus, the analyses and the code generator all work on a
//! *kernel* form in which every equation is one of the four primitives of
//! Section 2 of the paper:
//!
//! * a functional equation `x = f(y, z, ...)` (operands synchronous),
//! * a delay `x = y $ init v`,
//! * a sampling `x = y when z`,
//! * a deterministic merge `x = y default z`,
//!
//! plus explicit clock constraints carried over from the source process.
//! Nested expressions are flattened by introducing fresh local signals.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::ast::{BinOp, ClockAst, Expr, Process, ProcessDef, UnOp};
use crate::{Name, SignalError, Value};

/// A primitive functional operator of the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    /// Identity (plain copy, used for `x := y` and `x := constant`).
    Id,
    /// Boolean negation.
    Not,
    /// Integer negation.
    Neg,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean exclusive or.
    Xor,
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division.
    Div,
    /// Equality test.
    Eq,
    /// Disequality test.
    Ne,
    /// Strictly-less-than test.
    Lt,
    /// Less-or-equal test.
    Le,
    /// Strictly-greater-than test.
    Gt,
    /// Greater-or-equal test.
    Ge,
}

impl PrimOp {
    /// Returns `true` when the operator produces a boolean result.
    pub fn is_boolean(self) -> bool {
        matches!(
            self,
            PrimOp::Not
                | PrimOp::And
                | PrimOp::Or
                | PrimOp::Xor
                | PrimOp::Eq
                | PrimOp::Ne
                | PrimOp::Lt
                | PrimOp::Le
                | PrimOp::Gt
                | PrimOp::Ge
        )
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrimOp::Id => "id",
            PrimOp::Not => "not",
            PrimOp::Neg => "neg",
            PrimOp::And => "and",
            PrimOp::Or => "or",
            PrimOp::Xor => "xor",
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "/",
            PrimOp::Eq => "=",
            PrimOp::Ne => "/=",
            PrimOp::Lt => "<",
            PrimOp::Le => "<=",
            PrimOp::Gt => ">",
            PrimOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

impl From<UnOp> for PrimOp {
    fn from(op: UnOp) -> Self {
        match op {
            UnOp::Not => PrimOp::Not,
            UnOp::Neg => PrimOp::Neg,
        }
    }
}

impl From<BinOp> for PrimOp {
    fn from(op: BinOp) -> Self {
        match op {
            BinOp::And => PrimOp::And,
            BinOp::Or => PrimOp::Or,
            BinOp::Xor => PrimOp::Xor,
            BinOp::Add => PrimOp::Add,
            BinOp::Sub => PrimOp::Sub,
            BinOp::Mul => PrimOp::Mul,
            BinOp::Div => PrimOp::Div,
            BinOp::Eq => PrimOp::Eq,
            BinOp::Ne => PrimOp::Ne,
            BinOp::Lt => PrimOp::Lt,
            BinOp::Le => PrimOp::Le,
            BinOp::Gt => PrimOp::Gt,
            BinOp::Ge => PrimOp::Ge,
        }
    }
}

/// An operand of a kernel equation: either a constant or a signal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// A constant operand: present at whatever clock the equation requires.
    Const(Value),
    /// A signal operand.
    Var(Name),
}

impl Atom {
    /// Returns the signal name when the atom is a variable.
    pub fn as_var(&self) -> Option<&Name> {
        match self {
            Atom::Var(n) => Some(n),
            Atom::Const(_) => None,
        }
    }

    /// Returns the constant when the atom is a constant.
    pub fn as_const(&self) -> Option<Value> {
        match self {
            Atom::Const(v) => Some(*v),
            Atom::Var(_) => None,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Const(v) => write!(f, "{v}"),
            Atom::Var(n) => write!(f, "{n}"),
        }
    }
}

impl From<Name> for Atom {
    fn from(n: Name) -> Self {
        Atom::Var(n)
    }
}

impl From<Value> for Atom {
    fn from(v: Value) -> Self {
        Atom::Const(v)
    }
}

/// A kernel equation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelEq {
    /// `out = op(args...)` — all variable operands and the output are
    /// synchronous.
    Func {
        /// Defined signal.
        out: Name,
        /// Applied operator.
        op: PrimOp,
        /// Operands.
        args: Vec<Atom>,
    },
    /// `out = arg $ init v` — `out` and `arg` are synchronous, `out` starts
    /// at `init` and then carries the previous value of `arg`.
    Delay {
        /// Defined signal.
        out: Name,
        /// Delayed signal.
        arg: Name,
        /// Initial value.
        init: Value,
    },
    /// `out = arg when cond` — present iff `arg` (when it is a signal) and
    /// `cond` are present and `cond` is true.
    When {
        /// Defined signal.
        out: Name,
        /// Sampled operand.
        arg: Atom,
        /// Boolean condition signal.
        cond: Name,
    },
    /// `out = left default right` — the value of `left` when present,
    /// otherwise the value of `right`.
    Default {
        /// Defined signal.
        out: Name,
        /// Priority operand.
        left: Atom,
        /// Fallback operand.
        right: Atom,
    },
}

impl KernelEq {
    /// The signal defined by the equation.
    pub fn defined(&self) -> &Name {
        match self {
            KernelEq::Func { out, .. }
            | KernelEq::Delay { out, .. }
            | KernelEq::When { out, .. }
            | KernelEq::Default { out, .. } => out,
        }
    }

    /// The signals read by the equation (variable operands, including the
    /// sampling condition).
    pub fn reads(&self) -> Vec<Name> {
        let mut out = Vec::new();
        match self {
            KernelEq::Func { args, .. } => {
                for a in args {
                    if let Atom::Var(n) = a {
                        out.push(n.clone());
                    }
                }
            }
            KernelEq::Delay { arg, .. } => out.push(arg.clone()),
            KernelEq::When { arg, cond, .. } => {
                if let Atom::Var(n) = arg {
                    out.push(n.clone());
                }
                out.push(cond.clone());
            }
            KernelEq::Default { left, right, .. } => {
                if let Atom::Var(n) = left {
                    out.push(n.clone());
                }
                if let Atom::Var(n) = right {
                    out.push(n.clone());
                }
            }
        }
        out
    }

    /// Returns `true` when the equation is a delay (its data dependency is
    /// on the *previous* instant, so it never participates in instantaneous
    /// dependency cycles).
    pub fn is_delay(&self) -> bool {
        matches!(self, KernelEq::Delay { .. })
    }
}

impl fmt::Display for KernelEq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelEq::Func { out, op, args } => {
                let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{out} := {op}({})", args.join(", "))
            }
            KernelEq::Delay { out, arg, init } => write!(f, "{out} := {arg} $ init {init}"),
            KernelEq::When { out, arg, cond } => write!(f, "{out} := {arg} when {cond}"),
            KernelEq::Default { out, left, right } => {
                write!(f, "{out} := {left} default {right}")
            }
        }
    }
}

/// The inferred type of a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalType {
    /// Carries booleans.
    Bool,
    /// Carries integers.
    Int,
    /// Could not be resolved (treated as integer-like by the analyses).
    Unknown,
}

/// A Signal process in kernel form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelProcess {
    name: String,
    equations: Vec<KernelEq>,
    constraints: Vec<(ClockAst, ClockAst)>,
    inputs: BTreeSet<Name>,
    outputs: BTreeSet<Name>,
    locals: BTreeSet<Name>,
}

impl KernelProcess {
    /// Creates an empty kernel process with the given name.
    pub fn empty(name: impl Into<String>) -> Self {
        KernelProcess {
            name: name.into(),
            equations: Vec::new(),
            constraints: Vec::new(),
            inputs: BTreeSet::new(),
            outputs: BTreeSet::new(),
            locals: BTreeSet::new(),
        }
    }

    /// The process name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernel equations, in source order.
    pub fn equations(&self) -> &[KernelEq] {
        &self.equations
    }

    /// The explicit clock constraints of the process.
    pub fn constraints(&self) -> &[(ClockAst, ClockAst)] {
        &self.constraints
    }

    /// The input signals (free signals that are never defined).
    pub fn inputs(&self) -> impl Iterator<Item = &Name> + '_ {
        self.inputs.iter()
    }

    /// The output signals (defined signals exposed by the interface).
    pub fn outputs(&self) -> impl Iterator<Item = &Name> + '_ {
        self.outputs.iter()
    }

    /// The local signals (defined signals hidden from the interface,
    /// including the temporaries introduced by normalization).
    pub fn locals(&self) -> impl Iterator<Item = &Name> + '_ {
        self.locals.iter()
    }

    /// Every signal of the process, inputs first.
    pub fn signals(&self) -> impl Iterator<Item = &Name> + '_ {
        self.inputs
            .iter()
            .chain(self.outputs.iter())
            .chain(self.locals.iter())
    }

    /// The set of all signal names.
    pub fn signal_set(&self) -> BTreeSet<Name> {
        self.signals().cloned().collect()
    }

    /// The visible interface: inputs and outputs.
    pub fn interface(&self) -> BTreeSet<Name> {
        self.inputs.union(&self.outputs).cloned().collect()
    }

    /// Returns `true` when `name` is an input of the process.
    pub fn is_input(&self, name: &str) -> bool {
        self.inputs.contains(name)
    }

    /// Returns `true` when `name` is an output of the process.
    pub fn is_output(&self, name: &str) -> bool {
        self.outputs.contains(name)
    }

    /// The equation defining `name`, if any.
    pub fn definition_of(&self, name: &str) -> Option<&KernelEq> {
        self.equations
            .iter()
            .find(|eq| eq.defined().as_str() == name)
    }

    /// Adds an equation to the process, maintaining the input/output/local
    /// partition.  The defined signal is classified as a local unless it was
    /// already declared as an output.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::MultipleDefinitions`] when the defined signal
    /// already has an equation.
    pub fn push_equation(&mut self, eq: KernelEq) -> Result<(), SignalError> {
        let out = eq.defined().clone();
        if self.definition_of(out.as_str()).is_some() {
            return Err(SignalError::MultipleDefinitions(out));
        }
        self.inputs.remove(&out);
        if !self.outputs.contains(&out) {
            self.locals.insert(out.clone());
        }
        for read in eq.reads() {
            if !self.outputs.contains(&read) && !self.locals.contains(&read) {
                self.inputs.insert(read);
            }
        }
        self.equations.push(eq);
        Ok(())
    }

    /// Adds an explicit clock constraint to the process.
    pub fn push_constraint(&mut self, left: ClockAst, right: ClockAst) {
        let mut vars = Vec::new();
        left.free_vars(&mut vars);
        right.free_vars(&mut vars);
        for v in vars {
            if !self.outputs.contains(&v) && !self.locals.contains(&v) {
                self.inputs.insert(v);
            }
        }
        self.constraints.push((left, right));
    }

    /// Declares `name` as an output of the interface.
    pub fn declare_output(&mut self, name: impl Into<Name>) {
        let name = name.into();
        self.locals.remove(&name);
        self.inputs.remove(&name);
        self.outputs.insert(name);
    }

    /// Declares `name` as an input of the interface.
    pub fn declare_input(&mut self, name: impl Into<Name>) {
        let name = name.into();
        if !self.outputs.contains(&name) && !self.locals.contains(&name) {
            self.inputs.insert(name);
        }
    }

    /// Synchronous composition of two kernel processes.
    ///
    /// Equations and constraints are concatenated; a signal that is an output
    /// of either operand is an output of the composition, and the inputs are
    /// the remaining free signals.  Local signals keep their status (callers
    /// are expected to have renamed instances so that locals do not collide).
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::MultipleDefinitions`] when both operands define
    /// the same signal.
    pub fn compose(&self, other: &KernelProcess) -> Result<KernelProcess, SignalError> {
        let mut out = KernelProcess::empty(format!("{}|{}", self.name, other.name));
        for o in self.outputs.iter().chain(other.outputs.iter()) {
            out.outputs.insert(o.clone());
        }
        for l in self.locals.iter().chain(other.locals.iter()) {
            out.locals.insert(l.clone());
        }
        for eq in self.equations.iter().chain(other.equations.iter()) {
            let defined = eq.defined().clone();
            if out.definition_of(defined.as_str()).is_some() {
                return Err(SignalError::MultipleDefinitions(defined));
            }
            out.equations.push(eq.clone());
        }
        for (l, r) in self.constraints.iter().chain(other.constraints.iter()) {
            out.constraints.push((l.clone(), r.clone()));
        }
        // Inputs: every read or constrained signal that is not defined.
        let defined: BTreeSet<Name> = out
            .equations
            .iter()
            .map(|eq| eq.defined().clone())
            .collect();
        let mut used: BTreeSet<Name> = BTreeSet::new();
        for eq in &out.equations {
            used.extend(eq.reads());
        }
        for (l, r) in &out.constraints {
            let mut vars = Vec::new();
            l.free_vars(&mut vars);
            r.free_vars(&mut vars);
            used.extend(vars);
        }
        for name in self.inputs.iter().chain(other.inputs.iter()) {
            used.insert(name.clone());
        }
        out.inputs = used.difference(&defined).cloned().collect();
        // Defined signals that were declared neither output nor local become
        // locals.
        for d in defined {
            if !out.outputs.contains(&d) {
                out.locals.insert(d);
            }
        }
        Ok(out)
    }

    /// Hides `names`: they become locals and disappear from the interface.
    pub fn hide<'a, I>(&mut self, names: I)
    where
        I: IntoIterator<Item = &'a str>,
    {
        for n in names {
            let name = Name::from(n);
            if self.outputs.remove(&name) || self.inputs.remove(&name) {
                self.locals.insert(name);
            }
        }
    }

    /// Infers a type for every signal of the process by propagating type
    /// information through equations and constraints until a fixed point.
    pub fn infer_types(&self) -> BTreeMap<Name, SignalType> {
        let mut types: BTreeMap<Name, SignalType> = self
            .signal_set()
            .into_iter()
            .map(|n| (n, SignalType::Unknown))
            .collect();
        let set = |types: &mut BTreeMap<Name, SignalType>, n: &Name, t: SignalType| -> bool {
            if t == SignalType::Unknown {
                return false;
            }
            let entry = types.get_mut(n).expect("signal declared");
            if *entry == SignalType::Unknown {
                *entry = t;
                true
            } else {
                false
            }
        };
        let value_type = |v: Value| match v {
            Value::Bool(_) => SignalType::Bool,
            Value::Int(_) => SignalType::Int,
        };
        let atom_type = |types: &BTreeMap<Name, SignalType>, a: &Atom| match a {
            Atom::Const(v) => value_type(*v),
            Atom::Var(n) => types[n],
        };
        let mut changed = true;
        while changed {
            changed = false;
            // Clock constraints sample boolean signals.
            for (l, r) in &self.constraints {
                for c in [l, r] {
                    let mut stack = vec![c];
                    while let Some(c) = stack.pop() {
                        match c {
                            ClockAst::WhenTrue(n) | ClockAst::WhenFalse(n) => {
                                changed |= set(&mut types, n, SignalType::Bool);
                            }
                            ClockAst::And(a, b) | ClockAst::Or(a, b) | ClockAst::Diff(a, b) => {
                                stack.push(a);
                                stack.push(b);
                            }
                            ClockAst::Zero | ClockAst::Of(_) => {}
                        }
                    }
                }
            }
            for eq in &self.equations {
                match eq {
                    KernelEq::Func { out, op, args } => {
                        if op.is_boolean() {
                            changed |= set(&mut types, out, SignalType::Bool);
                        } else if *op == PrimOp::Id {
                            let arg_t = atom_type(&types, &args[0]);
                            changed |= set(&mut types, out, arg_t);
                            if let Atom::Var(n) = &args[0] {
                                let out_t = types[out];
                                changed |= set(&mut types, n, out_t);
                            }
                        } else {
                            changed |= set(&mut types, out, SignalType::Int);
                        }
                        // Comparison and arithmetic arguments are integers
                        // unless the operator is purely boolean.
                        let arg_ty = match op {
                            PrimOp::And | PrimOp::Or | PrimOp::Xor | PrimOp::Not => {
                                SignalType::Bool
                            }
                            PrimOp::Add
                            | PrimOp::Sub
                            | PrimOp::Mul
                            | PrimOp::Div
                            | PrimOp::Neg
                            | PrimOp::Lt
                            | PrimOp::Le
                            | PrimOp::Gt
                            | PrimOp::Ge => SignalType::Int,
                            PrimOp::Eq | PrimOp::Ne | PrimOp::Id => SignalType::Unknown,
                        };
                        for a in args {
                            if let Atom::Var(n) = a {
                                changed |= set(&mut types, n, arg_ty);
                            }
                        }
                    }
                    KernelEq::Delay { out, arg, init } => {
                        changed |= set(&mut types, out, value_type(*init));
                        let out_t = types[out];
                        changed |= set(&mut types, arg, out_t);
                        let arg_t = types[arg];
                        changed |= set(&mut types, out, arg_t);
                    }
                    KernelEq::When { out, arg, cond } => {
                        changed |= set(&mut types, cond, SignalType::Bool);
                        let arg_t = atom_type(&types, arg);
                        changed |= set(&mut types, out, arg_t);
                        if let Atom::Var(n) = arg {
                            let out_t = types[out];
                            changed |= set(&mut types, n, out_t);
                        }
                    }
                    KernelEq::Default { out, left, right } => {
                        let lt = atom_type(&types, left);
                        let rt = atom_type(&types, right);
                        let t = if lt != SignalType::Unknown { lt } else { rt };
                        changed |= set(&mut types, out, t);
                        let out_t = types[out];
                        if let Atom::Var(n) = left {
                            changed |= set(&mut types, n, out_t);
                        }
                        if let Atom::Var(n) = right {
                            changed |= set(&mut types, n, out_t);
                        }
                    }
                }
            }
        }
        types
    }

    /// The signals of boolean type according to [`KernelProcess::infer_types`].
    pub fn boolean_signals(&self) -> BTreeSet<Name> {
        self.infer_types()
            .into_iter()
            .filter(|(_, t)| *t == SignalType::Bool)
            .map(|(n, _)| n)
            .collect()
    }

    /// The delay registers of the process: one per delay equation, with its
    /// initial value.
    pub fn registers(&self) -> Vec<(Name, Name, Value)> {
        self.equations
            .iter()
            .filter_map(|eq| match eq {
                KernelEq::Delay { out, arg, init } => Some((out.clone(), arg.clone(), *init)),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for KernelProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "process {} (", self.name)?;
        writeln!(
            f,
            "  ? {}",
            self.inputs
                .iter()
                .map(Name::as_str)
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        writeln!(
            f,
            "  ! {}",
            self.outputs
                .iter()
                .map(Name::as_str)
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        writeln!(f, ")")?;
        for eq in &self.equations {
            writeln!(f, "| {eq}")?;
        }
        for (l, r) in &self.constraints {
            writeln!(f, "| {l} ^= {r}")?;
        }
        if !self.locals.is_empty() {
            writeln!(
                f,
                "/ {}",
                self.locals
                    .iter()
                    .map(Name::as_str)
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        Ok(())
    }
}

/// Normalizes a [`ProcessDef`] into kernel form.
///
/// # Errors
///
/// Returns [`SignalError::MultipleDefinitions`] if a signal ends up defined
/// by more than one equation.
pub fn normalize(def: &ProcessDef) -> Result<KernelProcess, SignalError> {
    let mut ctx = Normalizer {
        kernel: KernelProcess::empty(def.name.clone()),
        counter: 0,
        hidden: Vec::new(),
    };
    for out in &def.outputs {
        ctx.kernel.declare_output(out.clone());
    }
    ctx.process(&def.body)?;
    for input in &def.inputs {
        ctx.kernel.declare_input(input.clone());
    }
    let hidden: Vec<Name> = ctx.hidden.clone();
    let mut kernel = ctx.kernel;
    kernel.hide(hidden.iter().map(Name::as_str));
    Ok(kernel)
}

struct Normalizer {
    kernel: KernelProcess,
    counter: usize,
    hidden: Vec<Name>,
}

impl Normalizer {
    fn fresh(&mut self, hint: &str) -> Name {
        self.counter += 1;
        // Temporaries carry the process name so that separately normalized
        // components can be composed without capture.
        let prefix: String = self
            .kernel
            .name()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        Name::from(format!("_{prefix}_{hint}{}", self.counter))
    }

    fn process(&mut self, p: &Process) -> Result<(), SignalError> {
        match p {
            Process::Define { target, rhs } => self.define(target.clone(), rhs),
            Process::Constraint { left, right } => {
                self.kernel.push_constraint(left.clone(), right.clone());
                Ok(())
            }
            Process::Compose(parts) => {
                for q in parts {
                    self.process(q)?;
                }
                Ok(())
            }
            Process::Hide { body, locals } => {
                self.process(body)?;
                self.hidden.extend(locals.iter().cloned());
                Ok(())
            }
        }
    }

    /// Flattens `expr` into an atom, introducing a temporary definition when
    /// the expression is not already a constant or a variable.
    fn atom(&mut self, expr: &Expr) -> Result<Atom, SignalError> {
        match expr {
            Expr::Const(v) => Ok(Atom::Const(*v)),
            Expr::Var(n) => Ok(Atom::Var(n.clone())),
            _ => {
                let tmp = self.fresh("e");
                self.define(tmp.clone(), expr)?;
                Ok(Atom::Var(tmp))
            }
        }
    }

    /// Flattens `expr` into a signal name.
    fn signal(&mut self, expr: &Expr) -> Result<Name, SignalError> {
        match self.atom(expr)? {
            Atom::Var(n) => Ok(n),
            Atom::Const(v) => {
                let tmp = self.fresh("k");
                self.kernel.push_equation(KernelEq::Func {
                    out: tmp.clone(),
                    op: PrimOp::Id,
                    args: vec![Atom::Const(v)],
                })?;
                Ok(tmp)
            }
        }
    }

    fn define(&mut self, out: Name, rhs: &Expr) -> Result<(), SignalError> {
        match rhs {
            Expr::Const(v) => self.kernel.push_equation(KernelEq::Func {
                out,
                op: PrimOp::Id,
                args: vec![Atom::Const(*v)],
            }),
            Expr::Var(n) => self.kernel.push_equation(KernelEq::Func {
                out,
                op: PrimOp::Id,
                args: vec![Atom::Var(n.clone())],
            }),
            Expr::Pre { body, init } => {
                let arg = self.signal(body)?;
                self.kernel.push_equation(KernelEq::Delay {
                    out,
                    arg,
                    init: *init,
                })
            }
            Expr::When { body, cond } => {
                let arg = self.atom(body)?;
                let cond = self.signal(cond)?;
                self.kernel.push_equation(KernelEq::When { out, arg, cond })
            }
            Expr::Default { left, right } => {
                let left = self.atom(left)?;
                let right = self.atom(right)?;
                self.kernel
                    .push_equation(KernelEq::Default { out, left, right })
            }
            Expr::Cell { body, clock, init } => {
                // z := x cell b init v
                //   ≡ z := x default (z $ init v)  |  ^z = ^x ^+ [b]
                let body_name = self.signal(body)?;
                let clock_name = self.signal(clock)?;
                let mem = self.fresh("cell");
                self.kernel.push_equation(KernelEq::Delay {
                    out: mem.clone(),
                    arg: out.clone(),
                    init: *init,
                })?;
                self.kernel.push_equation(KernelEq::Default {
                    out: out.clone(),
                    left: Atom::Var(body_name.clone()),
                    right: Atom::Var(mem),
                })?;
                self.kernel.push_constraint(
                    ClockAst::of(out),
                    ClockAst::of(body_name).or(ClockAst::when_true(clock_name)),
                );
                Ok(())
            }
            Expr::Unary { op, arg } => {
                let arg = self.atom(arg)?;
                self.kernel.push_equation(KernelEq::Func {
                    out,
                    op: (*op).into(),
                    args: vec![arg],
                })
            }
            Expr::Binary { op, left, right } => {
                let left = self.atom(left)?;
                let right = self.atom(right)?;
                self.kernel.push_equation(KernelEq::Func {
                    out,
                    op: (*op).into(),
                    args: vec![left, right],
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcessBuilder;

    fn filter() -> ProcessDef {
        ProcessBuilder::new("filter")
            .define("x", Expr::cst(true).when(Expr::var("y").ne(Expr::var("z"))))
            .define("z", Expr::var("y").pre(true))
            .hide(["z"])
            .output("x")
            .input("y")
            .build()
            .expect("filter builds")
    }

    #[test]
    fn filter_normalizes_into_three_equations() {
        let k = filter().normalize().expect("normalizes");
        // x := true when _e1 ;  _e1 := y /= z ;  z := y $ init true
        assert_eq!(k.equations().len(), 3);
        assert!(k.is_input("y"));
        assert!(k.is_output("x"));
        assert!(k.locals().any(|n| n.as_str() == "z"));
        assert_eq!(k.registers().len(), 1);
    }

    #[test]
    fn multiple_definitions_are_rejected() {
        let def = ProcessBuilder::new("bad")
            .define("x", Expr::var("y"))
            .define("x", Expr::var("z"))
            .build()
            .expect("builder does not check duplicates");
        assert_eq!(
            def.normalize(),
            Err(SignalError::MultipleDefinitions(Name::from("x")))
        );
    }

    #[test]
    fn cell_desugars_into_delay_merge_and_constraint() {
        let def = ProcessBuilder::new("mem")
            .define("y", Expr::var("x").cell(Expr::var("c"), false))
            .output("y")
            .build()
            .expect("builds");
        let k = def.normalize().expect("normalizes");
        assert_eq!(k.constraints().len(), 1);
        assert!(k.equations().iter().any(KernelEq::is_delay));
        assert!(k
            .equations()
            .iter()
            .any(|eq| matches!(eq, KernelEq::Default { .. })));
    }

    #[test]
    fn type_inference_finds_booleans_and_integers() {
        let def = ProcessBuilder::new("typed")
            .define("b", Expr::var("x").ne(Expr::var("y")))
            .define("n", Expr::var("x").add(Expr::cst(1)))
            .define("m", Expr::var("n").pre(0))
            .build()
            .expect("builds");
        let k = def.normalize().expect("normalizes");
        let types = k.infer_types();
        assert_eq!(types[&Name::from("b")], SignalType::Bool);
        assert_eq!(types[&Name::from("n")], SignalType::Int);
        assert_eq!(types[&Name::from("m")], SignalType::Int);
        assert_eq!(types[&Name::from("x")], SignalType::Int);
    }

    #[test]
    fn composition_merges_interfaces() {
        let producer = ProcessBuilder::new("p")
            .define("x", Expr::var("a").add(Expr::cst(1)))
            .output("x")
            .build()
            .unwrap()
            .normalize()
            .unwrap();
        let consumer = ProcessBuilder::new("c")
            .define("y", Expr::var("x").add(Expr::var("b")))
            .output("y")
            .build()
            .unwrap()
            .normalize()
            .unwrap();
        let both = producer.compose(&consumer).expect("composable");
        assert!(both.is_output("x"));
        assert!(both.is_output("y"));
        assert!(both.is_input("a"));
        assert!(both.is_input("b"));
        assert!(!both.is_input("x"));
    }

    #[test]
    fn composition_rejects_double_definitions() {
        let a = ProcessBuilder::new("a")
            .define("x", Expr::cst(1))
            .output("x")
            .build()
            .unwrap()
            .normalize()
            .unwrap();
        let b = ProcessBuilder::new("b")
            .define("x", Expr::cst(2))
            .output("x")
            .build()
            .unwrap()
            .normalize()
            .unwrap();
        assert!(matches!(
            a.compose(&b),
            Err(SignalError::MultipleDefinitions(_))
        ));
    }

    #[test]
    fn display_round_trips_enough_information() {
        let k = filter().normalize().unwrap();
        let text = k.to_string();
        assert!(text.contains("process filter"));
        assert!(text.contains("? y"));
        assert!(text.contains("! x"));
        assert!(text.contains("$ init true"));
    }

    #[test]
    fn hide_moves_interface_signals_to_locals() {
        let mut k = filter().normalize().unwrap();
        k.hide(["x"]);
        assert!(!k.is_output("x"));
        assert!(k.locals().any(|n| n.as_str() == "x"));
    }

    #[test]
    fn push_constraint_registers_free_signals_as_inputs() {
        let mut k = KernelProcess::empty("c");
        k.push_constraint(ClockAst::of("x"), ClockAst::when_true("t"));
        assert!(k.is_input("x"));
        assert!(k.is_input("t"));
        assert!(k.boolean_signals().contains("t"));
    }
}
