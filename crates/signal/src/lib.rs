//! The Signal kernel language.
//!
//! This crate implements the data-flow synchronous language used by the paper
//! *Compositional design of isochronous systems* (Talpin, Ouy, Besnard,
//! Le Guernic — DATE 2008): abstract syntax for processes built from
//! equations over signals ([`ast`]), a normalization into the four-primitive
//! kernel used by the clock calculus ([`kernel`]), a fluent builder API
//! ([`builder`]), a textual parser for a small Signal-like concrete syntax
//! ([`parser`]), a pretty-printer ([`printer`]) and a library of the
//! processes used throughout the paper ([`stdlib`]): `filter`, `merge`,
//! `buffer` (= `flip | current`), the producer/consumer pair, the controller
//! and the loosely time-triggered architecture (writer / bus / reader).
//!
//! # Example
//!
//! ```
//! use signal_lang::builder::ProcessBuilder;
//! use signal_lang::ast::Expr;
//!
//! // filter: x := true when (y /= z) | z := y $ init true, hiding z.
//! let filter = ProcessBuilder::new("filter")
//!     .define("x", Expr::cst(true).when(Expr::var("y").ne(Expr::var("z"))))
//!     .define("z", Expr::var("y").pre(true))
//!     .hide(["z"])
//!     .build()?;
//! let kernel = filter.normalize()?;
//! assert!(kernel.inputs().any(|n| n.as_str() == "y"));
//! assert!(kernel.outputs().any(|n| n.as_str() == "x"));
//! # Ok::<(), signal_lang::SignalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod error;
pub mod generate;
pub mod kernel;
pub mod parser;
pub mod printer;
pub mod stdlib;
pub mod vars;

pub use ast::{BinOp, ClockAst, Expr, Process, ProcessDef, UnOp};
pub use builder::ProcessBuilder;
pub use error::SignalError;
pub use kernel::{Atom, KernelEq, KernelProcess, PrimOp};

/// Signal names — shared with the polychronous model-of-computation crate.
pub use moc::Name;
/// Values carried by signals — shared with the model-of-computation crate.
pub use moc::Value;
