//! Tokenizer for the Signal concrete syntax.

use std::fmt;

use crate::SignalError;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (signal or process name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// The `process` keyword.
    KwProcess,
    /// The `end` keyword.
    KwEnd,
    /// The `where` keyword, introducing the list of local signals.
    KwWhere,
    /// The `when` keyword.
    KwWhen,
    /// The `default` keyword.
    KwDefault,
    /// The `cell` keyword.
    KwCell,
    /// The `init` keyword.
    KwInit,
    /// The `not` keyword.
    KwNot,
    /// The `and` keyword.
    KwAnd,
    /// The `or` keyword.
    KwOr,
    /// The `xor` keyword.
    KwXor,
    /// The `true` literal.
    KwTrue,
    /// The `false` literal.
    KwFalse,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `|`
    Pipe,
    /// `?`
    Question,
    /// `!`
    Bang,
    /// `:=`
    Assign,
    /// `$`
    Dollar,
    /// `^` (clock-of prefix)
    Caret,
    /// `^=` (clock equality)
    CaretEq,
    /// `^+` (clock union)
    CaretPlus,
    /// `^-` (clock difference)
    CaretMinus,
    /// `^*` (clock intersection)
    CaretStar,
    /// `=`
    Eq,
    /// `/=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(i) => write!(f, "integer `{i}`"),
            TokenKind::KwProcess => write!(f, "`process`"),
            TokenKind::KwEnd => write!(f, "`end`"),
            TokenKind::KwWhere => write!(f, "`where`"),
            TokenKind::KwWhen => write!(f, "`when`"),
            TokenKind::KwDefault => write!(f, "`default`"),
            TokenKind::KwCell => write!(f, "`cell`"),
            TokenKind::KwInit => write!(f, "`init`"),
            TokenKind::KwNot => write!(f, "`not`"),
            TokenKind::KwAnd => write!(f, "`and`"),
            TokenKind::KwOr => write!(f, "`or`"),
            TokenKind::KwXor => write!(f, "`xor`"),
            TokenKind::KwTrue => write!(f, "`true`"),
            TokenKind::KwFalse => write!(f, "`false`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::Question => write!(f, "`?`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Assign => write!(f, "`:=`"),
            TokenKind::Dollar => write!(f, "`$`"),
            TokenKind::Caret => write!(f, "`^`"),
            TokenKind::CaretEq => write!(f, "`^=`"),
            TokenKind::CaretPlus => write!(f, "`^+`"),
            TokenKind::CaretMinus => write!(f, "`^-`"),
            TokenKind::CaretStar => write!(f, "`^*`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Ne => write!(f, "`/=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based column of the first character.
    pub column: usize,
}

/// The tokenizer.
#[derive(Debug)]
pub struct Lexer<'src> {
    chars: std::iter::Peekable<std::str::Chars<'src>>,
    line: usize,
    column: usize,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'src str) -> Self {
        Lexer {
            chars: source.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    /// Tokenizes the whole input, appending a final [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::Parse`] on an unexpected character.
    pub fn tokenize(mut self) -> Result<Vec<Token>, SignalError> {
        let mut out = Vec::new();
        loop {
            self.skip_whitespace_and_comments();
            let line = self.line;
            let column = self.column;
            let Some(&c) = self.chars.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    column,
                });
                return Ok(out);
            };
            let kind = self.next_kind(c, line, column)?;
            out.push(Token { kind, line, column });
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if let Some(c) = c {
            if c == '\n' {
                self.line += 1;
                self.column = 1;
            } else {
                self.column += 1;
            }
        }
        c
    }

    fn skip_whitespace_and_comments(&mut self) {
        loop {
            match self.chars.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('%') => {
                    // Comments run from `%` to the end of the line.
                    while let Some(&c) = self.chars.peek() {
                        self.bump();
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn next_kind(&mut self, c: char, line: usize, column: usize) -> Result<TokenKind, SignalError> {
        if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while let Some(&c) = self.chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            return Ok(keyword_or_ident(s));
        }
        if c.is_ascii_digit() {
            let mut n: i64 = 0;
            while let Some(&c) = self.chars.peek() {
                if let Some(d) = c.to_digit(10) {
                    n = n * 10 + i64::from(d);
                    self.bump();
                } else {
                    break;
                }
            }
            return Ok(TokenKind::Int(n));
        }
        self.bump();
        let two = |lexer: &mut Self, next: char, yes: TokenKind, no: TokenKind| {
            if lexer.chars.peek() == Some(&next) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        let kind = match c {
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            '[' => TokenKind::LBracket,
            ']' => TokenKind::RBracket,
            ',' => TokenKind::Comma,
            '|' => TokenKind::Pipe,
            '?' => TokenKind::Question,
            '!' => TokenKind::Bang,
            '$' => TokenKind::Dollar,
            '+' => TokenKind::Plus,
            '-' => TokenKind::Minus,
            '*' => TokenKind::Star,
            '=' => TokenKind::Eq,
            '<' => two(self, '=', TokenKind::Le, TokenKind::Lt),
            '>' => two(self, '=', TokenKind::Ge, TokenKind::Gt),
            '/' => two(self, '=', TokenKind::Ne, TokenKind::Slash),
            ':' => {
                if self.chars.peek() == Some(&'=') {
                    self.bump();
                    TokenKind::Assign
                } else {
                    return Err(SignalError::Parse {
                        line,
                        column,
                        message: "expected `:=`".to_string(),
                    });
                }
            }
            '^' => match self.chars.peek() {
                Some('=') => {
                    self.bump();
                    TokenKind::CaretEq
                }
                Some('+') => {
                    self.bump();
                    TokenKind::CaretPlus
                }
                Some('-') => {
                    self.bump();
                    TokenKind::CaretMinus
                }
                Some('*') => {
                    self.bump();
                    TokenKind::CaretStar
                }
                _ => TokenKind::Caret,
            },
            other => {
                return Err(SignalError::Parse {
                    line,
                    column,
                    message: format!("unexpected character `{other}`"),
                })
            }
        };
        Ok(kind)
    }
}

fn keyword_or_ident(s: String) -> TokenKind {
    match s.as_str() {
        "process" => TokenKind::KwProcess,
        "end" => TokenKind::KwEnd,
        "where" => TokenKind::KwWhere,
        "when" => TokenKind::KwWhen,
        "default" => TokenKind::KwDefault,
        "cell" => TokenKind::KwCell,
        "init" => TokenKind::KwInit,
        "not" => TokenKind::KwNot,
        "and" => TokenKind::KwAnd,
        "or" => TokenKind::KwOr,
        "xor" => TokenKind::KwXor,
        "true" => TokenKind::KwTrue,
        "false" => TokenKind::KwFalse,
        _ => TokenKind::Ident(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_identifiers_keywords_and_integers() {
        assert_eq!(
            kinds("x := y when 42"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Ident("y".into()),
                TokenKind::KwWhen,
                TokenKind::Int(42),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_clock_operators() {
        assert_eq!(
            kinds("^x ^= (^y ^+ [not t])"),
            vec![
                TokenKind::Caret,
                TokenKind::Ident("x".into()),
                TokenKind::CaretEq,
                TokenKind::LParen,
                TokenKind::Caret,
                TokenKind::Ident("y".into()),
                TokenKind::CaretPlus,
                TokenKind::LBracket,
                TokenKind::KwNot,
                TokenKind::Ident("t".into()),
                TokenKind::RBracket,
                TokenKind::RParen,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn distinguishes_slash_and_ne() {
        assert_eq!(
            kinds("a / b /= c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Slash,
                TokenKind::Ident("b".into()),
                TokenKind::Ne,
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let tokens = Lexer::new("x % a comment\n:= 1").tokenize().unwrap();
        assert_eq!(tokens[1].kind, TokenKind::Assign);
        assert_eq!(tokens[1].line, 2);
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = Lexer::new("x := #").tokenize().unwrap_err();
        assert!(matches!(err, SignalError::Parse { .. }));
    }

    #[test]
    fn rejects_lone_colon() {
        let err = Lexer::new("x : y").tokenize().unwrap_err();
        assert!(matches!(err, SignalError::Parse { .. }));
    }
}
