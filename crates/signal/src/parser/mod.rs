//! A textual front-end for the Signal kernel.
//!
//! The concrete syntax is a small, unambiguous rendition of Signal:
//!
//! ```text
//! process filter (? y ! x)
//!   x := true when (y /= z)
//! | z := y $ init true
//! where z
//! end
//! ```
//!
//! * equations are written `x := expr` and separated by `|`;
//! * explicit clock constraints are written `^x ^= [t]`, `^r ^= (^x ^+ ^y)`,
//!   with `^+`, `^*`, `^-` for clock union, intersection and difference and
//!   `[t]` / `[not t]` for the true/false samplings of a boolean signal;
//! * the delay is the postfix `$ init <constant>`;
//! * local signals are listed after `where`;
//! * a file may contain several `process ... end` definitions.
//!
//! The pretty-printer of [`crate::printer`] emits exactly this syntax, which
//! the round-trip tests rely on.

mod lexer;
mod parse;

pub use lexer::{Lexer, Token, TokenKind};
pub use parse::{parse_process, parse_program};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer;
    use crate::stdlib;

    #[test]
    fn parses_the_filter_example() {
        let src = "
process filter (? y ! x)
  x := true when (y /= z)
| z := y $ init true
where z
end";
        let def = parse_process(src).expect("parses");
        assert_eq!(def.name, "filter");
        assert_eq!(def.inputs.len(), 1);
        assert_eq!(def.outputs.len(), 1);
        let k = def.normalize().expect("normalizes");
        assert_eq!(k.registers().len(), 1);
    }

    #[test]
    fn parses_clock_constraints() {
        let src = "
process flip (? x, y ! )
  s := t $ init true
| t := not s
| ^x ^= [t]
| ^y ^= [not t]
| ^r ^= (^x ^+ ^y)
| r := x default y
where s, t, r
end";
        let def = parse_process(src).expect("parses");
        let k = def.normalize().expect("normalizes");
        assert_eq!(k.constraints().len(), 3);
    }

    #[test]
    fn round_trips_every_paper_process() {
        for def in stdlib::all_paper_processes() {
            let text = printer::render(&def);
            let reparsed = parse_process(&text)
                .unwrap_or_else(|e| panic!("{} does not reparse: {e}\n{text}", def.name));
            let k1 = def.normalize().expect("original normalizes");
            let k2 = reparsed.normalize().expect("reparsed normalizes");
            assert_eq!(
                k1.equations().len(),
                k2.equations().len(),
                "equation count differs for {}",
                def.name
            );
            assert_eq!(
                k1.constraints().len(),
                k2.constraints().len(),
                "constraint count differs for {}",
                def.name
            );
            assert_eq!(
                k1.signal_set(),
                k2.signal_set(),
                "signals differ for {}",
                def.name
            );
        }
    }

    #[test]
    fn a_program_may_contain_several_processes() {
        let src = "
process a (? x ! y)
  y := x + 1
end
process b (? y ! z)
  z := y * 2
end";
        let defs = parse_program(src).expect("parses");
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0].name, "a");
        assert_eq!(defs[1].name, "b");
    }

    #[test]
    fn reports_errors_with_positions() {
        let src = "process broken (? x ! y)\n  y := := x\nend";
        let err = parse_process(src).unwrap_err();
        match err {
            crate::SignalError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
