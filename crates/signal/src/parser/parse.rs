//! Recursive-descent parser producing [`ProcessDef`]s.

use crate::ast::{BinOp, ClockAst, Expr, Process, ProcessDef};
use crate::parser::lexer::{Lexer, Token, TokenKind};
use crate::{Name, SignalError, Value};

/// Parses a single `process ... end` definition.
///
/// # Errors
///
/// Returns [`SignalError::Parse`] on malformed input.
pub fn parse_process(source: &str) -> Result<ProcessDef, SignalError> {
    let mut defs = parse_program(source)?;
    if defs.len() == 1 {
        Ok(defs.remove(0))
    } else {
        Err(SignalError::Parse {
            line: 1,
            column: 1,
            message: format!("expected exactly one process, found {}", defs.len()),
        })
    }
}

/// Parses a whole program: a sequence of `process ... end` definitions.
///
/// # Errors
///
/// Returns [`SignalError::Parse`] on malformed input.
pub fn parse_program(source: &str) -> Result<Vec<ProcessDef>, SignalError> {
    let tokens = Lexer::new(source).tokenize()?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut defs = Vec::new();
    while !parser.at(&TokenKind::Eof) {
        defs.push(parser.process_def()?);
    }
    Ok(defs)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek2_kind(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, SignalError> {
        let t = self.peek();
        Err(SignalError::Parse {
            line: t.line,
            column: t.column,
            message: message.into(),
        })
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, SignalError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            self.error(format!("expected {kind}, found {}", self.peek_kind()))
        }
    }

    fn ident(&mut self) -> Result<Name, SignalError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(Name::from(s))
            }
            other => self.error(format!("expected an identifier, found {other}")),
        }
    }

    fn name_list(&mut self) -> Result<Vec<Name>, SignalError> {
        let mut names = Vec::new();
        if matches!(self.peek_kind(), TokenKind::Ident(_)) {
            names.push(self.ident()?);
            while self.at(&TokenKind::Comma) {
                self.bump();
                names.push(self.ident()?);
            }
        }
        Ok(names)
    }

    fn process_def(&mut self) -> Result<ProcessDef, SignalError> {
        self.expect(&TokenKind::KwProcess)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        self.expect(&TokenKind::Question)?;
        let inputs = self.name_list()?;
        self.expect(&TokenKind::Bang)?;
        let outputs = self.name_list()?;
        self.expect(&TokenKind::RParen)?;

        let mut statements = vec![self.statement()?];
        while self.at(&TokenKind::Pipe) {
            self.bump();
            statements.push(self.statement()?);
        }
        let locals = if self.at(&TokenKind::KwWhere) {
            self.bump();
            self.name_list()?
        } else {
            Vec::new()
        };
        self.expect(&TokenKind::KwEnd)?;

        let body = Process::Compose(statements);
        let body = if locals.is_empty() {
            body
        } else {
            Process::Hide {
                body: Box::new(body),
                locals,
            }
        };
        Ok(ProcessDef {
            name: name.as_str().to_string(),
            inputs,
            outputs,
            body,
        })
    }

    fn statement(&mut self) -> Result<Process, SignalError> {
        // `x := expr` when an identifier is directly followed by `:=`,
        // otherwise a clock constraint `clockexpr ^= clockexpr`.
        if matches!(self.peek_kind(), TokenKind::Ident(_))
            && *self.peek2_kind() == TokenKind::Assign
        {
            let target = self.ident()?;
            self.expect(&TokenKind::Assign)?;
            let rhs = self.expr()?;
            return Ok(Process::Define { target, rhs });
        }
        let left = self.clock_expr()?;
        self.expect(&TokenKind::CaretEq)?;
        let right = self.clock_expr()?;
        Ok(Process::Constraint { left, right })
    }

    // ---- clock expressions -------------------------------------------------

    fn clock_expr(&mut self) -> Result<ClockAst, SignalError> {
        let mut left = self.clock_term()?;
        loop {
            match self.peek_kind() {
                TokenKind::CaretPlus => {
                    self.bump();
                    left = left.or(self.clock_term()?);
                }
                TokenKind::CaretStar => {
                    self.bump();
                    left = left.and(self.clock_term()?);
                }
                TokenKind::CaretMinus => {
                    self.bump();
                    left = left.diff(self.clock_term()?);
                }
                _ => return Ok(left),
            }
        }
    }

    fn clock_term(&mut self) -> Result<ClockAst, SignalError> {
        match self.peek_kind().clone() {
            TokenKind::Caret => {
                self.bump();
                match self.peek_kind().clone() {
                    TokenKind::Int(0) => {
                        self.bump();
                        Ok(ClockAst::Zero)
                    }
                    TokenKind::Ident(_) => Ok(ClockAst::Of(self.ident()?)),
                    other => {
                        self.error(format!("expected a signal or `0` after `^`, found {other}"))
                    }
                }
            }
            TokenKind::LBracket => {
                self.bump();
                let negated = if self.at(&TokenKind::KwNot) {
                    self.bump();
                    true
                } else {
                    false
                };
                let name = self.ident()?;
                self.expect(&TokenKind::RBracket)?;
                Ok(if negated {
                    ClockAst::WhenFalse(name)
                } else {
                    ClockAst::WhenTrue(name)
                })
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.clock_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(_) => Ok(ClockAst::Of(self.ident()?)),
            other => self.error(format!("expected a clock expression, found {other}")),
        }
    }

    // ---- signal expressions ------------------------------------------------

    fn expr(&mut self) -> Result<Expr, SignalError> {
        self.default_expr()
    }

    fn default_expr(&mut self) -> Result<Expr, SignalError> {
        let mut left = self.when_expr()?;
        while self.at(&TokenKind::KwDefault) {
            self.bump();
            let right = self.when_expr()?;
            left = left.default(right);
        }
        Ok(left)
    }

    fn when_expr(&mut self) -> Result<Expr, SignalError> {
        let mut left = self.cell_expr()?;
        while self.at(&TokenKind::KwWhen) {
            self.bump();
            let cond = self.cell_expr()?;
            left = left.when(cond);
        }
        Ok(left)
    }

    fn cell_expr(&mut self) -> Result<Expr, SignalError> {
        let body = self.or_expr()?;
        if self.at(&TokenKind::KwCell) {
            self.bump();
            let clock = self.or_expr()?;
            self.expect(&TokenKind::KwInit)?;
            let init = self.constant()?;
            return Ok(body.cell(clock, init));
        }
        Ok(body)
    }

    fn or_expr(&mut self) -> Result<Expr, SignalError> {
        let mut left = self.and_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::KwOr => BinOp::Or,
                TokenKind::KwXor => BinOp::Xor,
                _ => return Ok(left),
            };
            self.bump();
            left = left.binary(op, self.and_expr()?);
        }
    }

    fn and_expr(&mut self) -> Result<Expr, SignalError> {
        let mut left = self.cmp_expr()?;
        while self.at(&TokenKind::KwAnd) {
            self.bump();
            left = left.and(self.cmp_expr()?);
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr, SignalError> {
        let left = self.add_expr()?;
        let op = match self.peek_kind() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.add_expr()?;
        Ok(left.binary(op, right))
    }

    fn add_expr(&mut self) -> Result<Expr, SignalError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(left),
            };
            self.bump();
            left = left.binary(op, self.mul_expr()?);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, SignalError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => return Ok(left),
            };
            self.bump();
            left = left.binary(op, self.unary_expr()?);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, SignalError> {
        match self.peek_kind() {
            TokenKind::KwNot => {
                self.bump();
                Ok(self.unary_expr()?.not())
            }
            TokenKind::Minus => {
                self.bump();
                let arg = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: crate::ast::UnOp::Neg,
                    arg: Box::new(arg),
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, SignalError> {
        let mut e = self.primary_expr()?;
        while self.at(&TokenKind::Dollar) {
            self.bump();
            self.expect(&TokenKind::KwInit)?;
            let init = self.constant()?;
            e = e.pre(init);
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, SignalError> {
        match self.peek_kind().clone() {
            TokenKind::KwTrue => {
                self.bump();
                Ok(Expr::cst(true))
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Expr::cst(false))
            }
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::cst(n))
            }
            TokenKind::Ident(_) => Ok(Expr::Var(self.ident()?)),
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            other => self.error(format!("expected an expression, found {other}")),
        }
    }

    fn constant(&mut self) -> Result<Value, SignalError> {
        match self.peek_kind().clone() {
            TokenKind::KwTrue => {
                self.bump();
                Ok(Value::Bool(true))
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Value::Bool(false))
            }
            TokenKind::Int(n) => {
                self.bump();
                Ok(Value::Int(n))
            }
            TokenKind::Minus => {
                self.bump();
                match self.peek_kind().clone() {
                    TokenKind::Int(n) => {
                        self.bump();
                        Ok(Value::Int(-n))
                    }
                    other => self.error(format!("expected an integer after `-`, found {other}")),
                }
            }
            other => self.error(format!("expected a constant, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_precedence_matches_signal() {
        let def = parse_process("process p (? a, b, c ! x)\n x := a + b * c when a = b\nend")
            .expect("parses");
        // when binds weaker than the arithmetic comparison.
        match &def.body {
            Process::Compose(parts) => match &parts[0] {
                Process::Define { rhs, .. } => match rhs {
                    Expr::When { body, cond } => {
                        assert!(matches!(**body, Expr::Binary { op: BinOp::Add, .. }));
                        assert!(matches!(**cond, Expr::Binary { op: BinOp::Eq, .. }));
                    }
                    other => panic!("unexpected rhs {other:?}"),
                },
                other => panic!("unexpected statement {other:?}"),
            },
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn dollar_init_parses_negative_constants() {
        let def = parse_process("process p (? a ! x)\n x := a $ init -3\nend").expect("parses");
        let k = def.normalize().unwrap();
        assert_eq!(k.registers()[0].2, Value::Int(-3));
    }

    #[test]
    fn cell_parses_with_init() {
        let def = parse_process("process p (? a, c ! x)\n x := a cell c init false\nend")
            .expect("parses");
        let k = def.normalize().unwrap();
        assert_eq!(k.constraints().len(), 1);
    }

    #[test]
    fn empty_interface_sections_are_allowed() {
        let def = parse_process("process p (? x, y ! )\n ^x ^= ^y\nend").expect("parses");
        assert!(def.outputs.is_empty());
        assert_eq!(def.inputs.len(), 2);
    }

    #[test]
    fn unexpected_tokens_are_reported() {
        assert!(parse_process("process p (? a ! x) x := end").is_err());
        assert!(parse_process("process p ? a ! x) x := a end").is_err());
        assert!(parse_process("").is_err());
    }
}
