//! Pretty-printing of Signal processes in the crate's concrete syntax.
//!
//! The emitted text can be parsed back by [`crate::parser`], which the test
//! suite uses as a round-trip property.

use std::fmt::Write as _;

use crate::ast::{Expr, Process, ProcessDef};

/// Renders a process definition in the concrete syntax accepted by the
/// parser.
///
/// # Example
///
/// ```
/// use signal_lang::{ProcessBuilder, Expr, printer};
/// let def = ProcessBuilder::new("inc")
///     .define("x", Expr::var("a").add(Expr::cst(1)))
///     .build()?;
/// let text = printer::render(&def);
/// assert!(text.starts_with("process inc"));
/// # Ok::<(), signal_lang::SignalError>(())
/// ```
pub fn render(def: &ProcessDef) -> String {
    let mut out = String::new();
    let inputs: Vec<&str> = def.inputs.iter().map(|n| n.as_str()).collect();
    let outputs: Vec<&str> = def.outputs.iter().map(|n| n.as_str()).collect();
    let _ = writeln!(
        out,
        "process {} (? {} ! {})",
        def.name,
        inputs.join(", "),
        outputs.join(", ")
    );
    let mut statements = Vec::new();
    let mut hidden = Vec::new();
    flatten(&def.body, &mut statements, &mut hidden);
    for (i, s) in statements.iter().enumerate() {
        let sep = if i == 0 { " " } else { "|" };
        let _ = writeln!(out, "{sep} {s}");
    }
    if !hidden.is_empty() {
        let _ = writeln!(out, "where {}", hidden.join(", "));
    }
    let _ = writeln!(out, "end");
    out
}

fn flatten(p: &Process, statements: &mut Vec<String>, hidden: &mut Vec<String>) {
    match p {
        Process::Define { target, rhs } => {
            statements.push(format!("{target} := {}", render_expr(rhs)));
        }
        Process::Constraint { left, right } => {
            statements.push(format!("{left} ^= {right}"));
        }
        Process::Compose(parts) => {
            for q in parts {
                flatten(q, statements, hidden);
            }
        }
        Process::Hide { body, locals } => {
            flatten(body, statements, hidden);
            hidden.extend(locals.iter().map(|n| n.as_str().to_string()));
        }
    }
}

/// Renders an expression with fully parenthesized sub-expressions, so that
/// the output never depends on operator precedence.
pub fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Const(v) => v.to_string(),
        Expr::Var(n) => n.to_string(),
        Expr::Pre { body, init } => format!("({} $ init {init})", render_expr(body)),
        Expr::When { body, cond } => {
            format!("({} when {})", render_expr(body), render_expr(cond))
        }
        Expr::Default { left, right } => {
            format!("({} default {})", render_expr(left), render_expr(right))
        }
        Expr::Cell { body, clock, init } => format!(
            "({} cell {} init {init})",
            render_expr(body),
            render_expr(clock)
        ),
        Expr::Unary { op, arg } => format!("({op} {})", render_expr(arg)),
        Expr::Binary { op, left, right } => {
            format!("({} {op} {})", render_expr(left), render_expr(right))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ClockAst;
    use crate::builder::ProcessBuilder;

    #[test]
    fn renders_equations_constraints_and_restrictions() {
        let def = ProcessBuilder::new("flip")
            .define("s", Expr::var("t").pre(true))
            .define("t", Expr::var("s").not())
            .constraint_eq("x", ClockAst::when_true("t"))
            .constraint_eq("y", ClockAst::when_false("t"))
            .hide(["s", "t"])
            .inputs(["y"])
            .outputs(["x"])
            .build()
            .unwrap();
        let text = render(&def);
        assert!(text.contains("process flip (? y ! x)"));
        assert!(text.contains("s := (t $ init true)"));
        assert!(text.contains("^x ^= [t]"));
        assert!(text.contains("where s, t"));
        assert!(text.trim_end().ends_with("end"));
    }

    #[test]
    fn expression_rendering_is_fully_parenthesized() {
        let e = Expr::var("y")
            .default(Expr::var("r").pre(false))
            .when(Expr::var("c"));
        assert_eq!(render_expr(&e), "((y default (r $ init false)) when c)");
    }

    #[test]
    fn cell_and_unary_render() {
        let e = Expr::var("x").cell(Expr::var("c"), true).not();
        assert_eq!(render_expr(&e), "(not (x cell c init true))");
    }
}
