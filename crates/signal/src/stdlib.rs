//! The processes used throughout the paper, ready to be analyzed, composed,
//! compiled and simulated.
//!
//! * [`filter`] — Section 1: emits `x` every time the value of `y` changes.
//! * [`merge`] — Section 1: `d = if c then y else z`.
//! * [`buffer`] — Section 3: the one-place buffer `flip | current`.
//! * [`flip`], [`current`] — the two halves of the buffer.
//! * [`producer`], [`consumer`] — Section 5.1: the pair whose composition is
//!   weakly endochronous but not endochronous.
//! * [`producer_consumer`] — the `main` process composing the two.
//! * [`ltta_writer`], [`ltta_reader`], [`buffer_pair`], [`ltta_bus`],
//!   [`ltta`] — Section 4.2: the loosely time-triggered architecture.
//! * [`controller`] — Section 5.2: the synthesized controller specification
//!   (its operational counterpart is produced by the code generator).

use crate::ast::{ClockAst, Expr, ProcessDef};
use crate::builder::ProcessBuilder;

/// The `filter` process of Section 1: `x` is emitted (with value `true`)
/// every time the value of the boolean input `y` changes.
///
/// ```text
/// x = filter(y)  =def=  ( x := true when (y /= z) | z := y $ init true ) / z
/// ```
pub fn filter() -> ProcessDef {
    ProcessBuilder::new("filter")
        .define("x", Expr::cst(true).when(Expr::var("y").ne(Expr::var("z"))))
        .define("z", Expr::var("y").pre(true))
        .hide(["z"])
        .input("y")
        .output("x")
        .build()
        .expect("filter is well-formed")
}

/// The `merge` equation of Section 1: `d` equals `y` when the boolean `c` is
/// true and `z` otherwise.
///
/// As in the paper's traces, `y` is present exactly when `c` is true and `z`
/// exactly when `c` is false, so that `merge` on its own is endochronous
/// (single root `^c`); composing it with [`filter`] on the shared signal is
/// what breaks endochrony.
pub fn merge() -> ProcessDef {
    ProcessBuilder::new("merge")
        .define(
            "d",
            Expr::var("y")
                .when(Expr::var("c"))
                .default(Expr::var("z").when(Expr::var("c").not())),
        )
        .constraint_eq("y", ClockAst::when_true("c"))
        .constraint_eq("z", ClockAst::when_false("c"))
        .inputs(["c", "y", "z"])
        .output("d")
        .build()
        .expect("merge is well-formed")
}

/// The `flip` half of the buffer: synchronizes `x` and `y` to the true and
/// false values of an alternating boolean state.
///
/// ```text
/// flip(x, y) =def= ( s := t $ init true | t := not s | ^x = [t] | ^y = [not t] ) / s, t
/// ```
pub fn flip() -> ProcessDef {
    ProcessBuilder::new("flip")
        .define("s", Expr::var("t").pre(true))
        .define("t", Expr::var("s").not())
        .constraint_eq("x", ClockAst::when_true("t"))
        .constraint_eq("y", ClockAst::when_false("t"))
        .hide(["s", "t"])
        .inputs(["x", "y"])
        .build()
        .expect("flip is well-formed")
}

/// The `current` half of the buffer: stores the value of `y` and loads it
/// into `x` on request.  The request clock is the boolean signal `c`.
///
/// ```text
/// x = current(y, c) =def= ( r := y default (r $ init false)
///                         | x := r when c | ^r = ^x ^+ ^y ) / r
/// ```
pub fn current() -> ProcessDef {
    ProcessBuilder::new("current")
        .define("r", Expr::var("y").default(Expr::var("r").pre(false)))
        .define("x", Expr::var("r").when(Expr::var("c")))
        .constraint(ClockAst::of("r"), ClockAst::of("x").or(ClockAst::of("y")))
        .hide(["r"])
        .inputs(["y", "c"])
        .output("x")
        .build()
        .expect("current is well-formed")
}

/// The one-place `buffer` of Section 3: alternately reads `y` and emits `x`.
///
/// This is the composition `current | flip` of the paper with the sampling
/// clock of `current` provided by the alternating state `t` of `flip`:
/// its clock relations are `^r = ^s = ^t`, `^x = [t]`, `^y = [not t]`.
pub fn buffer() -> ProcessDef {
    ProcessBuilder::new("buffer")
        // flip
        .define("s", Expr::var("t").pre(true))
        .define("t", Expr::var("s").not())
        .constraint_eq("x", ClockAst::when_true("t"))
        .constraint_eq("y", ClockAst::when_false("t"))
        // current, sampled by the alternating state t
        .define("r", Expr::var("y").default(Expr::var("r").pre(false)))
        .define("x", Expr::var("r").when(Expr::var("t")))
        .constraint(ClockAst::of("r"), ClockAst::of("x").or(ClockAst::of("y")))
        .hide(["s", "t", "r"])
        .input("y")
        .output("x")
        .build()
        .expect("buffer is well-formed")
}

/// The `producer` of Section 5.1: increments `u` when `a` is true and `x`
/// otherwise.
///
/// ```text
/// (u, x) = producer(a) =def= ( ^u = [a] | u := 1 + (u $ init 0)
///                            | ^x = [not a] | x := 1 + (x $ init 0) )
/// ```
pub fn producer() -> ProcessDef {
    ProcessBuilder::new("producer")
        .constraint_eq("u", ClockAst::when_true("a"))
        .define("u", Expr::cst(1).add(Expr::var("u").pre(0)))
        .constraint_eq("x", ClockAst::when_false("a"))
        .define("x", Expr::cst(1).add(Expr::var("x").pre(0)))
        .input("a")
        .outputs(["u", "x"])
        .build()
        .expect("producer is well-formed")
}

/// The `consumer` of Section 5.1: adds the value of `x` to the count `v`
/// when `b` is true and `1` otherwise.
///
/// ```text
/// v = consumer(b, x) =def= ( ^v = ^b | ^x = [b]
///                          | v := (v $ init 0) + (x default 1) )
/// ```
pub fn consumer() -> ProcessDef {
    ProcessBuilder::new("consumer")
        .synchro("v", "b")
        .constraint_eq("x", ClockAst::when_true("b"))
        .define(
            "v",
            Expr::var("v")
                .pre(0)
                .add(Expr::var("x").default(Expr::cst(1))),
        )
        .inputs(["b", "x"])
        .output("v")
        .build()
        .expect("consumer is well-formed")
}

/// The `main` process of Section 5.1: the composition of the producer and
/// the consumer, with the shared signal `x` hidden.
///
/// Both components are endochronous; their composition is weakly
/// endochronous but not endochronous — its clock hierarchy has two roots,
/// related by the clock constraint `[not a] = [b]` on the shared signal.
pub fn producer_consumer() -> ProcessDef {
    ProcessBuilder::new("main")
        .include(&producer())
        .include(&consumer())
        .hide(["x"])
        .inputs(["a", "b"])
        .outputs(["u", "v"])
        .build()
        .expect("main is well-formed")
}

/// The composition `filter | merge` of Section 1, whose output `d` mixes the
/// filtered signal with an independent input and is therefore no longer
/// endochronous.
pub fn filter_merge() -> ProcessDef {
    // The filter's local delay is renamed so that it cannot be captured by
    // the merge's input `z`.
    let filter = filter().instantiate("f", &[("y", "y"), ("x", "x")]);
    let merge = merge().instantiate("m", &[("c", "c"), ("y", "x"), ("z", "z"), ("d", "d")]);
    ProcessBuilder::new("filter_merge")
        .include(&filter)
        .include(&merge)
        .inputs(["y", "c", "z"])
        .outputs(["x", "d"])
        .build()
        .expect("filter_merge is well-formed")
}

/// The LTTA `writer` of Section 4.2: accepts an input `xw` (present when the
/// writer's activation clock `cw` is true) and produces the value `yw`
/// together with an alternating flag `bw`.
///
/// ```text
/// (yw, bw) = writer(xw, cw) =def= ( ^xw = ^bw = [cw] | yw := xw
///                                 | bw := not (bw $ init true) )
/// ```
pub fn ltta_writer() -> ProcessDef {
    ProcessBuilder::new("writer")
        .constraint_eq("xw", ClockAst::when_true("cw"))
        .synchro("bw", "xw")
        .synchro("yw", "xw")
        .define("yw", Expr::var("xw"))
        .define("bw", Expr::var("pbw").not())
        .define("pbw", Expr::var("bw").pre(true))
        .hide(["pbw"])
        .inputs(["xw", "cw"])
        .outputs(["yw", "bw"])
        .build()
        .expect("writer is well-formed")
}

/// The LTTA `reader` of Section 4.2: loads `yr` and `br` from the bus (at
/// the instants where its activation clock `cr` is true) and extracts `xr`
/// whenever the flag `br` has changed — an alternating-bit protocol.
///
/// ```text
/// xr = reader(yr, br, cr) =def= ( xr := yr when filter(br) | ^yr = [cr] )
/// ```
pub fn ltta_reader() -> ProcessDef {
    ProcessBuilder::new("reader")
        .define(
            "fr",
            Expr::cst(true).when(Expr::var("br").ne(Expr::var("zr"))),
        )
        .define("zr", Expr::var("br").pre(true))
        .define("xr", Expr::var("yr").when(Expr::var("fr")))
        .constraint_eq("yr", ClockAst::when_true("cr"))
        .synchro("br", "yr")
        .hide(["fr", "zr"])
        .inputs(["yr", "br", "cr"])
        .output("xr")
        .build()
        .expect("reader is well-formed")
}

/// A one-place buffer over a *pair* of signals `(y, b)`, used twice to model
/// the LTTA bus (the writer's output buffer and the reader's input buffer).
///
/// It alternates between reading the pair `(y, b)` and emitting the pair
/// `(yo, bo)`, exactly like [`buffer`] but keeping the value and its flag
/// synchronized.
pub fn buffer_pair() -> ProcessDef {
    ProcessBuilder::new("buffer_pair")
        .define("s", Expr::var("t").pre(true))
        .define("t", Expr::var("s").not())
        .constraint_eq("yo", ClockAst::when_true("t"))
        .constraint_eq("y", ClockAst::when_false("t"))
        .synchro("b", "y")
        .synchro("bo", "yo")
        .define("ry", Expr::var("y").default(Expr::var("ry").pre(false)))
        .define("yo", Expr::var("ry").when(Expr::var("t")))
        .constraint(ClockAst::of("ry"), ClockAst::of("yo").or(ClockAst::of("y")))
        .define("rb", Expr::var("b").default(Expr::var("rb").pre(true)))
        .define("bo", Expr::var("rb").when(Expr::var("t")))
        .constraint(ClockAst::of("rb"), ClockAst::of("bo").or(ClockAst::of("b")))
        .hide(["s", "t", "ry", "rb"])
        .inputs(["y", "b"])
        .outputs(["yo", "bo"])
        .build()
        .expect("buffer_pair is well-formed")
}

/// The LTTA `bus` of Section 4.2: two pair-buffers in series, forwarding the
/// writer's `(yw, bw)` towards the reader's `(yr, br)`.
///
/// The bus activation clock `cb` of the paper is not used because the
/// buffers are paced by their own local clocks, exactly as noted in the
/// paper.
pub fn ltta_bus() -> ProcessDef {
    let stage1 = buffer_pair().instantiate(
        "bus1",
        &[("y", "yw"), ("b", "bw"), ("yo", "ym"), ("bo", "bm")],
    );
    let stage2 = buffer_pair().instantiate(
        "bus2",
        &[("y", "ym"), ("b", "bm"), ("yo", "yr"), ("bo", "br")],
    );
    ProcessBuilder::new("bus")
        .include(&stage1)
        .include(&stage2)
        .hide(["ym", "bm"])
        .inputs(["yw", "bw"])
        .outputs(["yr", "br"])
        .build()
        .expect("bus is well-formed")
}

/// The complete LTTA of Section 4.2: `xr = reader(bus(writer(xw, cw)), cr)`.
///
/// The hierarchy of this process has several roots (one per device clock):
/// it is *not* endochronous, but each component is, and the paper's static
/// criterion shows their composition is isochronous.
pub fn ltta() -> ProcessDef {
    ProcessBuilder::new("ltta")
        .include(&ltta_writer())
        .include(&ltta_bus())
        .include(&ltta_reader())
        .hide(["yw", "bw", "yr", "br"])
        .inputs(["xw", "cw", "cr"])
        .output("xr")
        .build()
        .expect("ltta is well-formed")
}

/// The controller specification of Section 5.2.
///
/// The controller accepts the inputs `a` and `b` of the producer/consumer
/// pair and computes the rendez-vous flags `ra`, `rb` and `r` used to
/// suspend one side until the clock constraint `[not a] = [b]` on the shared
/// variable can be satisfied.  The copies `c` and `d` fed to the producer
/// and consumer are exposed as outputs.  The operational suspension logic
/// (reading `a`/`b` only when allowed) is produced by the code generator's
/// controller synthesis, mirroring the C code of the paper.
pub fn controller() -> ProcessDef {
    ProcessBuilder::new("controller")
        .define(
            "ra",
            Expr::var("a").not().default(Expr::var("ra").pre(false)),
        )
        .define("rb", Expr::var("b").default(Expr::var("rb").pre(false)))
        .define("r", Expr::var("ra").and(Expr::var("rb")))
        .define("c", Expr::var("a"))
        .define("d", Expr::var("b"))
        .hide(["ra", "rb", "r"])
        .inputs(["a", "b"])
        .outputs(["c", "d"])
        .build()
        .expect("controller is well-formed")
}

/// A one-hot ring of `k` boolean registers named `{prefix}1..{prefix}k`:
/// `{prefix}1` is true at the first instant and the single `true` walks
/// the ring, so `[{prefix}i]` is the k-periodic phase word with a one at
/// position `i` — the syntactic shape `clocks::periodic_systems`
/// recognizes.
pub fn one_hot_ring(builder: ProcessBuilder, prefix: &str, k: usize) -> ProcessBuilder {
    let mut builder = builder;
    for i in 2..=k {
        builder = builder.define(
            format!("{prefix}{i}"),
            Expr::var(format!("{prefix}{}", i - 1)).pre(false),
        );
    }
    builder.define(
        format!("{prefix}1"),
        Expr::var(format!("{prefix}{k}")).pre(true),
    )
}

/// A bursty producer: reads its input `a` at every tick of a 6-phase
/// one-hot ring and forwards it as `x` only during phases 1–3 — the
/// emission word of `x` over the component's local reactions is
/// `(111000)`.
pub fn burst_source() -> ProcessDef {
    let builder = one_hot_ring(ProcessBuilder::new("burst_source"), "p", 6);
    builder
        .synchro("a", "w")
        .define("w", Expr::var("p1").or(Expr::var("p2")).or(Expr::var("p3")))
        .define("x", Expr::var("a").when(Expr::var("w")))
        .hide(["p1", "p2", "p3", "p4", "p5", "p6", "w"])
        .input("a")
        .output("x")
        .build()
        .expect("burst_source is well-formed")
}

/// The matching bursty consumer: reads `x` during phases 4–6 of its own
/// 6-phase ring (read word `(000111)`) and decimates it to `y` on phase 6
/// — the producer can run up to three tokens ahead, which is exactly the
/// k-periodic backlog bound the capacity derivation computes.
pub fn burst_sink() -> ProcessDef {
    let builder = one_hot_ring(ProcessBuilder::new("burst_sink"), "c", 6);
    builder
        .define("v", Expr::var("c4").or(Expr::var("c5")).or(Expr::var("c6")))
        .constraint_eq("x", ClockAst::when_true("v"))
        .define("y", Expr::var("x").when(Expr::var("c6")))
        .hide(["c1", "c2", "c3", "c4", "c5", "c6", "v"])
        .input("x")
        .output("y")
        .build()
        .expect("burst_sink is well-formed")
}

/// The interface abstraction of `burst_source | burst_sink`: its own
/// 6-phase ring reproduces the end-to-end behavior (`y` is every third
/// `x`) while hiding the shared signal `x` and both components' phase
/// registers — so the *global* algebra of a design assembled from these
/// parts (`isochron::Design::from_parts`) cannot relate the edge clocks,
/// and only the components' local k-periodic words bound the channel.
pub fn burst_main() -> ProcessDef {
    let builder = one_hot_ring(ProcessBuilder::new("burst_main"), "m", 6);
    builder
        .synchro("a", "g")
        .define("g", Expr::var("m1").or(Expr::var("m2")).or(Expr::var("m3")))
        .define("x", Expr::var("a").when(Expr::var("g")))
        .define("y", Expr::var("x").when(Expr::var("m3")))
        .hide(["m1", "m2", "m3", "m4", "m5", "m6", "g", "x"])
        .input("a")
        .output("y")
        .build()
        .expect("burst_main is well-formed")
}

/// A one-place buffer whose alternating state starts *flipped* relative
/// to [`buffer`]: it emits its register initialization on its first
/// reaction and reads only on its second, so it primes a feedback loop
/// with a first token instead of waiting — the one-component fix the
/// priming-liveness analysis suggests for an unprimed loop.
pub fn primed_buffer() -> ProcessDef {
    ProcessBuilder::new("primed_buffer")
        .define("s", Expr::var("t").pre(false))
        .define("t", Expr::var("s").not())
        .constraint_eq("x", ClockAst::when_true("t"))
        .constraint_eq("y", ClockAst::when_false("t"))
        .define("r", Expr::var("y").default(Expr::var("r").pre(false)))
        .define("x", Expr::var("r").when(Expr::var("t")))
        .constraint(ClockAst::of("r"), ClockAst::of("x").or(ClockAst::of("y")))
        .hide(["s", "t", "r"])
        .input("y")
        .output("x")
        .build()
        .expect("primed_buffer is well-formed")
}

/// Every paper process, for data-driven tests and benchmarks.
pub fn all_paper_processes() -> Vec<ProcessDef> {
    vec![
        filter(),
        merge(),
        flip(),
        current(),
        buffer(),
        producer(),
        consumer(),
        producer_consumer(),
        filter_merge(),
        ltta_writer(),
        ltta_reader(),
        buffer_pair(),
        ltta_bus(),
        ltta(),
        controller(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_paper_process_normalizes() {
        for def in all_paper_processes() {
            let kernel = def
                .normalize()
                .unwrap_or_else(|e| panic!("process {} fails to normalize: {e}", def.name));
            assert!(
                !kernel.equations().is_empty() || !kernel.constraints().is_empty(),
                "process {} is empty",
                def.name
            );
        }
    }

    #[test]
    fn filter_interface_matches_the_paper() {
        let k = filter().normalize().unwrap();
        assert!(k.is_input("y"));
        assert!(k.is_output("x"));
        assert_eq!(k.inputs().count(), 1);
        assert_eq!(k.outputs().count(), 1);
    }

    #[test]
    fn buffer_has_the_paper_interface_and_state() {
        let k = buffer().normalize().unwrap();
        assert!(k.is_input("y"));
        assert!(k.is_output("x"));
        // Two delays: the alternating state s and the memory r.
        assert_eq!(k.registers().len(), 2);
    }

    #[test]
    fn producer_consumer_shares_x_internally() {
        let k = producer_consumer().normalize().unwrap();
        assert!(k.is_input("a"));
        assert!(k.is_input("b"));
        assert!(k.is_output("u"));
        assert!(k.is_output("v"));
        assert!(!k.is_input("x") && !k.is_output("x"));
        assert!(k.locals().any(|n| n.as_str() == "x"));
    }

    #[test]
    fn ltta_exposes_only_the_device_interfaces() {
        let k = ltta().normalize().unwrap();
        let inputs: Vec<&str> = k.inputs().map(|n| n.as_str()).collect();
        assert_eq!(inputs, vec!["cr", "cw", "xw"]);
        let outputs: Vec<&str> = k.outputs().map(|n| n.as_str()).collect();
        assert_eq!(outputs, vec!["xr"]);
    }

    #[test]
    fn bus_instances_do_not_collide() {
        let k = ltta_bus().normalize().unwrap();
        // The two buffer_pair instances each contribute two delays for their
        // memories plus one for the alternating state.
        assert_eq!(k.registers().len(), 6);
    }

    #[test]
    fn boolean_signals_are_detected_in_the_buffer() {
        let k = buffer().normalize().unwrap();
        let booleans = k.boolean_signals();
        assert!(booleans.contains("s"));
        assert!(booleans.contains("t"));
    }
}
