//! Free and defined signal analysis on the process AST.

use std::collections::BTreeSet;

use crate::ast::Process;
use crate::Name;

/// The signals defined (appearing on the left-hand side of an equation) in a
/// process, *including* those defined inside restrictions.
pub fn defined_signals(p: &Process) -> BTreeSet<Name> {
    let mut out = BTreeSet::new();
    collect_defined(p, &mut out);
    out
}

fn collect_defined(p: &Process, out: &mut BTreeSet<Name>) {
    match p {
        Process::Define { target, .. } => {
            out.insert(target.clone());
        }
        Process::Constraint { .. } => {}
        Process::Compose(parts) => {
            for q in parts {
                collect_defined(q, out);
            }
        }
        Process::Hide { body, .. } => collect_defined(body, out),
    }
}

/// The signals mentioned anywhere in a process (left- or right-hand sides,
/// clock constraints), except those whose scope is restricted.
pub fn visible_signals(p: &Process) -> BTreeSet<Name> {
    let mut out = BTreeSet::new();
    collect_visible(p, &mut out);
    out
}

fn collect_visible(p: &Process, out: &mut BTreeSet<Name>) {
    match p {
        Process::Define { target, rhs } => {
            out.insert(target.clone());
            let mut vars = Vec::new();
            rhs.free_vars(&mut vars);
            out.extend(vars);
        }
        Process::Constraint { left, right } => {
            let mut vars = Vec::new();
            left.free_vars(&mut vars);
            right.free_vars(&mut vars);
            out.extend(vars);
        }
        Process::Compose(parts) => {
            for q in parts {
                collect_visible(q, out);
            }
        }
        Process::Hide { body, locals } => {
            let mut inner = BTreeSet::new();
            collect_visible(body, &mut inner);
            for l in locals {
                inner.remove(l);
            }
            out.extend(inner);
        }
    }
}

/// The *free* signals of a process: visible signals that are never defined.
/// A free signal is an input of the process (Section 2 of the paper: a free
/// signal is an output iff it occurs on the left hand-side of an equation,
/// otherwise it is an input).
pub fn free_signals(p: &Process) -> BTreeSet<Name> {
    let visible = visible_signals(p);
    let defined = defined_signals(p);
    visible.difference(&defined).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ClockAst, Expr};

    fn filter_body() -> Process {
        Process::Hide {
            body: Box::new(Process::Compose(vec![
                Process::Define {
                    target: Name::from("x"),
                    rhs: Expr::cst(true).when(Expr::var("y").ne(Expr::var("z"))),
                },
                Process::Define {
                    target: Name::from("z"),
                    rhs: Expr::var("y").pre(true),
                },
            ])),
            locals: vec![Name::from("z")],
        }
    }

    #[test]
    fn defined_signals_include_restricted_ones() {
        let d = defined_signals(&filter_body());
        assert!(d.contains("x"));
        assert!(d.contains("z"));
    }

    #[test]
    fn visible_signals_exclude_restricted_ones() {
        let v = visible_signals(&filter_body());
        assert!(v.contains("x"));
        assert!(v.contains("y"));
        assert!(!v.contains("z"));
    }

    #[test]
    fn free_signals_are_the_inputs() {
        let f = free_signals(&filter_body());
        assert_eq!(f.into_iter().collect::<Vec<_>>(), vec![Name::from("y")]);
    }

    #[test]
    fn constraints_contribute_visible_signals() {
        let p = Process::Constraint {
            left: ClockAst::of("x"),
            right: ClockAst::when_true("t"),
        };
        let v = visible_signals(&p);
        assert!(v.contains("x"));
        assert!(v.contains("t"));
        assert!(defined_signals(&p).is_empty());
        assert_eq!(free_signals(&p).len(), 2);
    }
}
