//! Asynchronous composition of separately executed components.
//!
//! Each component of an [`AsyncNetwork`] is an independent [`Simulator`]
//! running at its own pace; components exchange values through unbounded
//! FIFOs, one per shared signal, exactly as a network with arbitrary
//! latency would.  A component whose required input is not yet available
//! *blocks* (its attempted reaction is rejected and retried later), which
//! models the blocking reads of the generated embedded code described in
//! Section 3.6 of the paper.
//!
//! The observable flows of such an execution are what Definition 3
//! (isochrony) compares against the flows of the synchronous composition.

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use signal_lang::{KernelProcess, Name, Value};

use crate::error::SimError;
use crate::simulator::{Drive, Simulator};

/// Identifier of a component inside an [`AsyncNetwork`].
pub type ComponentId = usize;

/// The result of attempting one reaction of one component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The component performed a reaction (possibly silent).
    Progress,
    /// The component could not react because a required input is not
    /// available yet (blocking read) or its constraints reject the instant.
    Blocked,
}

/// How the environment feeds an external input signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FeedMode {
    /// The value is read only when the component requires it.
    Demand,
    /// The value is imposed (signal present) at every attempted reaction of
    /// the consuming component, until the queue runs dry.
    Paced,
}

#[derive(Debug)]
struct Component {
    name: String,
    simulator: Simulator,
}

/// An asynchronous network of separately compiled components.
#[derive(Debug)]
pub struct AsyncNetwork {
    components: Vec<Component>,
    /// FIFO per connected signal (an output of one component feeding the
    /// homonymous input of others).
    channels: BTreeMap<Name, VecDeque<Value>>,
    /// Environment queues for external inputs.
    environment: BTreeMap<Name, (FeedMode, VecDeque<Value>)>,
    /// Flows observed so far, recorded at the producer side (or at the
    /// consumer side for environment inputs).
    flows: BTreeMap<Name, Vec<Value>>,
    blocked_attempts: u64,
    reactions: u64,
}

impl AsyncNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        AsyncNetwork {
            components: Vec::new(),
            channels: BTreeMap::new(),
            environment: BTreeMap::new(),
            flows: BTreeMap::new(),
            blocked_attempts: 0,
            reactions: 0,
        }
    }

    /// Adds a component executing `kernel`, activated (as by
    /// [`Simulator::with_activation`]) on the given signals at every
    /// attempted reaction.
    pub fn add_component<I, N>(
        &mut self,
        name: impl Into<String>,
        kernel: &KernelProcess,
        activation: I,
    ) -> ComponentId
    where
        I: IntoIterator<Item = N>,
        N: Into<Name>,
    {
        let component = Component {
            name: name.into(),
            simulator: Simulator::with_activation(kernel, activation),
        };
        self.components.push(component);
        self.wire();
        self.components.len() - 1
    }

    /// Feeds the external input `signal` with a finite sequence of values,
    /// consumed on demand (the component pulls a value only at the instants
    /// where its clock calculus requires the signal).
    pub fn feed<I, V>(&mut self, signal: impl Into<Name>, values: I)
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        self.environment.insert(
            signal.into(),
            (
                FeedMode::Demand,
                values.into_iter().map(Into::into).collect(),
            ),
        );
    }

    /// Feeds the external input `signal` with a finite sequence of values
    /// that *paces* its consumer: the signal is present at every attempted
    /// reaction of the consuming component until the sequence is exhausted.
    pub fn feed_paced<I, V>(&mut self, signal: impl Into<Name>, values: I)
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        self.environment.insert(
            signal.into(),
            (
                FeedMode::Paced,
                values.into_iter().map(Into::into).collect(),
            ),
        );
    }

    /// The number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// The name of a component.
    pub fn component_name(&self, id: ComponentId) -> &str {
        &self.components[id].name
    }

    /// The number of successful reactions so far.
    pub fn reactions(&self) -> u64 {
        self.reactions
    }

    /// The number of blocked attempts so far.
    pub fn blocked_attempts(&self) -> u64 {
        self.blocked_attempts
    }

    /// The flow of values observed on `signal` so far.
    pub fn flow(&self, signal: &str) -> Vec<Value> {
        self.flows.get(signal).cloned().unwrap_or_default()
    }

    /// Every recorded flow.
    pub fn flows(&self) -> &BTreeMap<Name, Vec<Value>> {
        &self.flows
    }

    /// (Re)computes the FIFO channels: one per signal produced by a
    /// component and consumed by another.
    fn wire(&mut self) {
        let mut produced: BTreeMap<Name, usize> = BTreeMap::new();
        for (i, c) in self.components.iter().enumerate() {
            for out in c.simulator.kernel().outputs() {
                produced.insert(out.clone(), i);
            }
        }
        for (i, c) in self.components.iter().enumerate() {
            for input in c.simulator.kernel().inputs() {
                if let Some(&producer) = produced.get(input) {
                    if producer != i {
                        self.channels.entry(input.clone()).or_default();
                    }
                }
            }
        }
    }

    /// Attempts one reaction of the component `id`.
    pub fn step_component(&mut self, id: ComponentId) -> StepOutcome {
        let inputs: Vec<Name> = self.components[id]
            .simulator
            .kernel()
            .inputs()
            .cloned()
            .collect();
        let mut drives: Vec<(Name, Drive)> = Vec::new();
        for input in &inputs {
            if let Some(queue) = self.channels.get(input) {
                match queue.front() {
                    Some(v) => drives.push((input.clone(), Drive::Available(*v))),
                    None => drives.push((input.clone(), Drive::Absent)),
                }
            } else if let Some((mode, queue)) = self.environment.get(input) {
                match (mode, queue.front()) {
                    (FeedMode::Demand, Some(v)) => {
                        drives.push((input.clone(), Drive::Available(*v)));
                    }
                    (FeedMode::Paced, Some(v)) => drives.push((input.clone(), Drive::Present(*v))),
                    (_, None) => drives.push((input.clone(), Drive::Absent)),
                }
            } else {
                drives.push((input.clone(), Drive::Absent));
            }
        }
        let drive_refs: Vec<(&str, Drive)> = drives.iter().map(|(n, d)| (n.as_str(), *d)).collect();
        let reaction = match self.components[id].simulator.step(&drive_refs) {
            Ok(r) => r,
            Err(SimError::UnknownSignal(n)) => {
                panic!("network wiring refers to unknown signal {n}")
            }
            Err(_) => {
                self.blocked_attempts += 1;
                return StepOutcome::Blocked;
            }
        };
        self.reactions += 1;
        // Consume the inputs that were actually used and publish outputs.
        for input in &inputs {
            if reaction.is_present(input.as_str()) {
                if let Some(queue) = self.channels.get_mut(input) {
                    queue.pop_front();
                } else if let Some((_, queue)) = self.environment.get_mut(input) {
                    if let Some(v) = queue.pop_front() {
                        self.flows.entry(input.clone()).or_default().push(v);
                    }
                }
            }
        }
        let outputs: Vec<Name> = self.components[id]
            .simulator
            .kernel()
            .outputs()
            .cloned()
            .collect();
        for output in outputs {
            if let Some(v) = reaction.value(output.as_str()) {
                self.flows.entry(output.clone()).or_default().push(v);
                if let Some(queue) = self.channels.get_mut(&output) {
                    queue.push_back(v);
                }
            }
        }
        StepOutcome::Progress
    }

    /// Runs `turns` attempts, visiting the components in round-robin order.
    /// Returns the number of successful reactions performed.
    pub fn run_round_robin(&mut self, turns: usize) -> u64 {
        let before = self.reactions;
        for turn in 0..turns {
            let id = turn % self.components.len();
            self.step_component(id);
        }
        self.reactions - before
    }

    /// Runs round-robin rounds until the network is *quiescent* — no flow
    /// grew over several consecutive full rounds, so every component is
    /// either finished (its environment streams are exhausted) or blocked on
    /// a value that will never arrive — or until `max_turns` attempts were
    /// made.  Returns the number of successful reactions performed.
    ///
    /// Quiescence is detected on flow growth rather than on reactions:
    /// components whose activation forces a tick keep performing silent
    /// reactions forever, and a reaction that only moves a token between
    /// FIFOs grows no flow either, so the stagnation window spans several
    /// rounds before the run is declared over.
    pub fn run_until_quiescent(&mut self, max_turns: usize) -> u64 {
        let before = self.reactions;
        let round = self.components.len().max(1);
        let stagnation_window = 4 * round + 4;
        let mut stagnant = 0usize;
        let mut last_volume: usize = self.flows.values().map(Vec::len).sum();
        let mut turn = 0usize;
        while turn < max_turns && stagnant < stagnation_window {
            for _ in 0..round {
                if turn >= max_turns {
                    break;
                }
                self.step_component(turn % round);
                turn += 1;
            }
            let volume: usize = self.flows.values().map(Vec::len).sum();
            if volume > last_volume {
                stagnant = 0;
                last_volume = volume;
            } else {
                stagnant += 1;
            }
        }
        self.reactions - before
    }

    /// Runs `turns` attempts, picking the component to run uniformly at
    /// random — the arbitrary interleaving of an asynchronous environment.
    pub fn run_random(&mut self, turns: usize, seed: u64) -> u64 {
        let before = self.reactions;
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..turns {
            let id = rng.gen_range(0..self.components.len());
            self.step_component(id);
        }
        self.reactions - before
    }
}

impl Default for AsyncNetwork {
    fn default() -> Self {
        AsyncNetwork::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_lang::stdlib;

    /// Asynchronous filter | merge: the flows must match the synchronous
    /// execution regardless of the interleaving (isochrony, Section 1 of the
    /// paper).
    #[test]
    fn filter_merge_async_flows_match_the_paper() {
        let filter = stdlib::filter().normalize().unwrap();
        let merge = stdlib::merge()
            .instantiate("m", &[("c", "c"), ("y", "x"), ("z", "z"), ("d", "d")])
            .normalize()
            .unwrap();
        let mut net = AsyncNetwork::new();
        net.add_component("filter", &filter, Vec::<Name>::new());
        net.add_component("merge", &merge, Vec::<Name>::new());
        // Paper flows: x(filter input y) = 1 0 0 1, c = 0 1 1 0, z = 1 0 1 0.
        net.feed_paced("y", [true, false, false, true]);
        net.feed_paced("c", [false, true, true, false]);
        net.feed("z", [true, false]);
        net.run_round_robin(64);
        // d = 1 1 1 0 as in the paper.
        assert_eq!(
            net.flow("d"),
            vec![
                Value::Bool(true),
                Value::Bool(true),
                Value::Bool(true),
                Value::Bool(false)
            ]
        );
        // The filter emitted x = 1 1 (two changes).
        assert_eq!(net.flow("x"), vec![Value::Bool(true), Value::Bool(true)]);
    }

    #[test]
    fn random_interleavings_produce_the_same_flows() {
        let mut reference: Option<Vec<Value>> = None;
        for seed in [1u64, 7, 42, 1234] {
            let filter = stdlib::filter().normalize().unwrap();
            let merge = stdlib::merge()
                .instantiate("m", &[("c", "c"), ("y", "x"), ("z", "z"), ("d", "d")])
                .normalize()
                .unwrap();
            let mut net = AsyncNetwork::new();
            net.add_component("filter", &filter, Vec::<Name>::new());
            net.add_component("merge", &merge, Vec::<Name>::new());
            net.feed_paced("y", [true, false, false, true, true, false]);
            net.feed_paced("c", [false, true, true, false, true, false]);
            net.feed("z", [true, false, true]);
            net.run_random(256, seed);
            let d = net.flow("d");
            match &reference {
                None => reference = Some(d),
                Some(r) => assert_eq!(r, &d, "seed {seed} produced different flows"),
            }
        }
    }

    #[test]
    fn buffer_chain_blocks_until_data_arrives() {
        let buffer = stdlib::buffer().normalize().unwrap();
        let mut net = AsyncNetwork::new();
        net.add_component("buffer", &buffer, ["t"]);
        // No data yet: the first read attempt blocks (its clock requires y).
        assert_eq!(net.step_component(0), StepOutcome::Blocked);
        net.feed("y", [true, false]);
        // Read then write, twice.
        let progressed = net.run_round_robin(8);
        assert!(progressed >= 4);
        assert_eq!(net.flow("x"), vec![Value::Bool(true), Value::Bool(false)]);
        assert!(net.blocked_attempts() >= 1);
    }

    #[test]
    fn producer_consumer_network_propagates_x() {
        let producer = stdlib::producer().normalize().unwrap();
        let consumer = stdlib::consumer().normalize().unwrap();
        let mut net = AsyncNetwork::new();
        net.add_component("producer", &producer, Vec::<Name>::new());
        net.add_component("consumer", &consumer, Vec::<Name>::new());
        // a = T F T F ..., b = F T F T ... so that [not a] and [b] line up.
        net.feed_paced("a", [true, false, true, false]);
        net.feed_paced("b", [false, true, false, true]);
        net.run_round_robin(64);
        // x counts 1, 2 on the false instants of a; v adds 1 when b is false
        // and the current x when b is true: v = 1, 2, 3, 5.
        assert_eq!(net.flow("x"), vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(
            net.flow("v"),
            vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(5)]
        );
    }

    #[test]
    fn quiescence_is_reached_once_the_streams_are_drained() {
        let producer = stdlib::producer().normalize().unwrap();
        let consumer = stdlib::consumer().normalize().unwrap();
        let mut net = AsyncNetwork::new();
        net.add_component("producer", &producer, Vec::<Name>::new());
        net.add_component("consumer", &consumer, Vec::<Name>::new());
        net.feed_paced("a", [true, false, true, false]);
        net.feed_paced("b", [false, true, false, true]);
        let reacted = net.run_until_quiescent(10_000);
        assert!(reacted >= 8, "only {reacted} reactions before quiescence");
        assert_eq!(net.flow("x"), vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(
            net.flow("v"),
            vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(5)]
        );
        // Running further changes nothing: the network is quiescent.
        let more = net.run_until_quiescent(1_000);
        let after = net.flow("v");
        assert_eq!(
            after.len(),
            4,
            "quiescent network grew a flow ({more} reactions)"
        );
    }

    #[test]
    fn component_metadata_is_accessible() {
        let filter = stdlib::filter().normalize().unwrap();
        let mut net = AsyncNetwork::default();
        let id = net.add_component("f", &filter, Vec::<Name>::new());
        assert_eq!(net.component_count(), 1);
        assert_eq!(net.component_name(id), "f");
        assert_eq!(net.reactions(), 0);
    }
}
