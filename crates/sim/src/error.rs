//! Simulation errors.

use std::fmt;

use signal_lang::Name;

/// An error raised while executing a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A clock constraint was violated by the driven instant (e.g. an input
    /// was forced present at an instant where its clock is false).
    ClockConstraintViolation {
        /// Human-readable description of the violated constraint.
        constraint: String,
    },
    /// Two sources disagree on the presence or value of a signal.
    Contradiction {
        /// The signal with contradictory requirements.
        signal: Name,
    },
    /// The instant could not be resolved: the presence of a signal remained
    /// unknown after propagation, meaning the caller must drive it
    /// explicitly.
    Unresolved {
        /// The signal whose presence could not be decided.
        signal: Name,
    },
    /// A value-level evaluation error (e.g. division by zero).
    Evaluation {
        /// Description of the fault.
        message: String,
    },
    /// An unknown signal name was driven.
    UnknownSignal(Name),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ClockConstraintViolation { constraint } => {
                write!(f, "clock constraint violated: {constraint}")
            }
            SimError::Contradiction { signal } => {
                write!(f, "contradictory presence or value for signal {signal}")
            }
            SimError::Unresolved { signal } => {
                write!(f, "presence of signal {signal} could not be resolved")
            }
            SimError::Evaluation { message } => write!(f, "evaluation error: {message}"),
            SimError::UnknownSignal(n) => write!(f, "unknown signal {n}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SimError::Contradiction {
            signal: Name::from("x"),
        };
        assert!(e.to_string().contains('x'));
        let e = SimError::ClockConstraintViolation {
            constraint: "^x = [t]".into(),
        };
        assert!(e.to_string().contains("^x = [t]"));
        assert!(SimError::UnknownSignal(Name::from("q"))
            .to_string()
            .contains('q'));
    }
}
