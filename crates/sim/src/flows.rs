//! Flow recording and comparison.
//!
//! A *flow* is the sequence of values observed on one signal, with the
//! synchronization instants erased — exactly the information preserved by
//! the desynchronization of Section 2.3 of the paper.  Isochrony
//! (Definition 3) is an equality of flows: the synchronous composition and
//! the asynchronous execution of the separately compiled components must
//! observe the same value sequences on every signal.
//!
//! This module holds the comparison logic shared by the dynamic isochrony
//! observers (`isochron::isochrony`) and the deployment conformance checker
//! (`gals_rt::conformance`).

use std::collections::BTreeMap;
use std::fmt;

use signal_lang::{Name, Value};

/// The flows observed on the signals of an execution: one value sequence
/// per signal, in production order.
pub type Flows = BTreeMap<Name, Vec<Value>>;

/// One signal whose two observed flows differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowMismatch {
    /// The signal.
    pub signal: Name,
    /// The flow observed on the left execution.
    pub left: Vec<Value>,
    /// The flow observed on the right execution.
    pub right: Vec<Value>,
}

impl fmt::Display for FlowMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {:?} /= {:?}", self.signal, self.left, self.right)
    }
}

/// The result of comparing two flow observations signal per signal.
#[derive(Debug, Clone, Default)]
pub struct FlowComparison {
    /// The signals whose flows coincide.
    pub matching: Vec<Name>,
    /// The signals whose flows differ, with both observations.
    pub mismatches: Vec<FlowMismatch>,
}

impl FlowComparison {
    /// Compares two observations on the union of their signals; a signal
    /// absent from one side is treated as an empty flow (no value was ever
    /// observed on it).
    pub fn compare(left: &Flows, right: &Flows) -> Self {
        let signals: Vec<Name> = left
            .keys()
            .chain(right.keys().filter(|k| !left.contains_key(*k)))
            .cloned()
            .collect();
        Self::compare_on(left, right, signals)
    }

    /// Compares two observations on an explicit set of signals.
    pub fn compare_on<I>(left: &Flows, right: &Flows, signals: I) -> Self
    where
        I: IntoIterator<Item = Name>,
    {
        let empty: Vec<Value> = Vec::new();
        let mut comparison = FlowComparison::default();
        for signal in signals {
            let l = left.get(&signal).unwrap_or(&empty);
            let r = right.get(&signal).unwrap_or(&empty);
            if l == r {
                comparison.matching.push(signal);
            } else {
                comparison.mismatches.push(FlowMismatch {
                    signal,
                    left: l.clone(),
                    right: r.clone(),
                });
            }
        }
        comparison
    }

    /// Returns `true` when every compared signal observed the same flow on
    /// both executions.
    pub fn flows_match(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// The signals whose flows differ.
    pub fn mismatching_signals(&self) -> Vec<Name> {
        self.mismatches.iter().map(|m| m.signal.clone()).collect()
    }
}

impl fmt::Display for FlowComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.flows_match() {
            write!(f, "flows match on {} signal(s)", self.matching.len())
        } else {
            writeln!(
                f,
                "flows differ on {} of {} signal(s):",
                self.mismatches.len(),
                self.mismatches.len() + self.matching.len()
            )?;
            for m in &self.mismatches {
                writeln!(f, "  {m}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows(pairs: &[(&str, &[i64])]) -> Flows {
        pairs
            .iter()
            .map(|(n, vs)| (Name::from(*n), vs.iter().map(|&v| Value::Int(v)).collect()))
            .collect()
    }

    #[test]
    fn equal_flows_match() {
        let a = flows(&[("u", &[1, 2]), ("v", &[3])]);
        let b = flows(&[("u", &[1, 2]), ("v", &[3])]);
        let c = FlowComparison::compare(&a, &b);
        assert!(c.flows_match());
        assert_eq!(c.matching.len(), 2);
        assert!(c.to_string().contains("match"));
    }

    #[test]
    fn differing_flows_are_reported_per_signal() {
        let a = flows(&[("u", &[1, 2]), ("v", &[3])]);
        let b = flows(&[("u", &[1, 2]), ("v", &[4])]);
        let c = FlowComparison::compare(&a, &b);
        assert!(!c.flows_match());
        assert_eq!(c.mismatching_signals(), vec![Name::from("v")]);
        assert!(c.to_string().contains('v'));
    }

    #[test]
    fn a_missing_signal_is_an_empty_flow() {
        let a = flows(&[("u", &[1])]);
        let b = flows(&[]);
        let c = FlowComparison::compare(&a, &b);
        assert_eq!(c.mismatching_signals(), vec![Name::from("u")]);
        // And an empty flow on both sides matches.
        let c = FlowComparison::compare_on(&b, &b, [Name::from("w")]);
        assert!(c.flows_match());
    }
}
