//! Execution substrate for Signal processes.
//!
//! The crate provides the runtime machinery the paper's examples need:
//!
//! * a **synchronous interpreter** ([`Simulator`]) that executes a kernel
//!   process reaction by reaction, solving presence and values of every
//!   signal from the driven inputs and the clock constraints;
//! * **trace recording** into the behaviors of the polychronous model of
//!   computation ([`trace`]), so that executions can be compared with
//!   clock- and flow-equivalence;
//! * an **asynchronous network simulator** ([`AsyncNetwork`]) in which each
//!   component runs at its own pace and communicates through unbounded
//!   FIFOs, as a network with arbitrary latency would — the observable
//!   flows of the synchronous and asynchronous executions are what the
//!   isochrony property (Definition 3 of the paper) compares.
//!
//! # Example
//!
//! ```
//! use sim::{Drive, Simulator};
//! use signal_lang::stdlib;
//!
//! let mut filter = Simulator::new(&stdlib::filter().normalize()?);
//! let r1 = filter.step(&[("y", Drive::Present(true.into()))])?;
//! // The first value (true) equals the initial delay value: no change event.
//! assert!(!r1.is_present("x"));
//! let r2 = filter.step(&[("y", Drive::Present(false.into()))])?;
//! assert!(r2.is_present("x"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_net;
pub mod error;
pub mod flows;
pub mod simulator;
pub mod trace;

pub use async_net::{AsyncNetwork, ComponentId, StepOutcome};
pub use error::SimError;
pub use flows::{FlowComparison, FlowMismatch, Flows};
pub use simulator::{Drive, Simulator};
pub use trace::TraceRecorder;
