//! The synchronous reaction-by-reaction interpreter.
//!
//! Each call to [`Simulator::step`] executes one instant of the process: the
//! caller *drives* a subset of the signals (typically the inputs and the
//! activation clocks) and the interpreter solves the presence and the value
//! of every other signal by propagating the kernel equations and the clock
//! constraints to a fixed point.  For every autonomous state clock (delay
//! register) the drives leave undetermined, the interpreter then tries a
//! tick, keeping only the ticks that extend to a complete valid instant —
//! this is how self-paced processes such as the one-place buffer advance,
//! alone or composed with input-driven components whose signals are
//! already present.  Signals whose presence still cannot be derived are
//! absent — the silent reaction remains legal whenever no consistent
//! non-silent one exists, and an empty drive is silent outright — and the
//! completed instant is validated against every constraint before the delay
//! registers are committed, so that an ill-driven instant is rejected
//! instead of silently corrupting the state.

use std::collections::{BTreeMap, BTreeSet};

use moc::{Reaction, Tag};
use signal_lang::{Atom, ClockAst, KernelEq, KernelProcess, Name, PrimOp, Value};

use crate::error::SimError;

/// How the caller drives one signal for one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drive {
    /// The signal is present and carries this value.
    Present(Value),
    /// The signal is present; its value is computed by the process (used for
    /// activation clocks and state signals).
    Tick,
    /// The signal is absent at this instant.
    Absent,
    /// The signal is available with this value, but only becomes present if
    /// the process requires it (demand-driven input, as a blocking read
    /// would provide).
    Available(Value),
}

/// Presence and value knowledge about one signal during resolution.
#[derive(Debug, Clone, Copy, Default)]
struct Knowledge {
    presence: Option<bool>,
    value: Option<Value>,
}

/// The synchronous interpreter of a kernel process.
#[derive(Debug, Clone)]
pub struct Simulator {
    kernel: KernelProcess,
    registers: BTreeMap<Name, Value>,
    activation: Vec<Name>,
    instant: u64,
}

impl Simulator {
    /// Creates a simulator with every delay register set to its declared
    /// initial value.
    pub fn new(kernel: &KernelProcess) -> Self {
        let registers = kernel
            .registers()
            .into_iter()
            .map(|(out, _, init)| (out, init))
            .collect();
        Simulator {
            kernel: kernel.clone(),
            registers,
            activation: Vec::new(),
            instant: 0,
        }
    }

    /// Creates a simulator that additionally forces the given signals to be
    /// present (`Drive::Tick`) at every step — the idiom for processes paced
    /// by an internal state clock, such as the paper's one-place buffer.
    pub fn with_activation<I, N>(kernel: &KernelProcess, activation: I) -> Self
    where
        I: IntoIterator<Item = N>,
        N: Into<Name>,
    {
        let mut sim = Simulator::new(kernel);
        sim.activation = activation.into_iter().map(Into::into).collect();
        sim
    }

    /// The process being executed.
    pub fn kernel(&self) -> &KernelProcess {
        &self.kernel
    }

    /// The current contents of the delay registers.
    pub fn registers(&self) -> &BTreeMap<Name, Value> {
        &self.registers
    }

    /// The number of instants executed so far.
    pub fn instants(&self) -> u64 {
        self.instant
    }

    /// Executes one instant.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the driven instant contradicts the clock
    /// constraints or the equations of the process; in that case the state
    /// of the simulator is unchanged, so the caller may retry with a
    /// different drive (this is how the asynchronous network models a
    /// blocking read).
    pub fn step(&mut self, drives: &[(&str, Drive)]) -> Result<Reaction, SimError> {
        let signals: BTreeSet<Name> = self.kernel.signal_set();
        let mut know: BTreeMap<Name, Knowledge> = signals
            .iter()
            .map(|n| (n.clone(), Knowledge::default()))
            .collect();
        let mut available: BTreeMap<Name, Value> = BTreeMap::new();

        // Inputs the environment actually offered a token for this instant;
        // a speculative tick may consume these and nothing else.
        let mut provided: BTreeSet<Name> = BTreeSet::new();
        for name in &self.activation {
            if !signals.contains(name) {
                return Err(SimError::UnknownSignal(name.clone()));
            }
            know.get_mut(name).expect("declared").presence = Some(true);
            provided.insert(name.clone());
        }
        for (name, drive) in drives {
            let name = Name::from(*name);
            let Some(k) = know.get_mut(&name) else {
                return Err(SimError::UnknownSignal(name));
            };
            match drive {
                Drive::Present(v) => {
                    k.presence = Some(true);
                    k.value = Some(*v);
                    provided.insert(name);
                }
                Drive::Tick => {
                    k.presence = Some(true);
                    provided.insert(name);
                }
                Drive::Absent => k.presence = Some(false),
                Drive::Available(v) => {
                    available.insert(name.clone(), *v);
                    provided.insert(name);
                }
            }
        }

        // Fixed-point propagation.
        let max_rounds = 4 * (self.kernel.equations().len() + self.kernel.constraints().len() + 4);
        let registers = self.kernel.registers();
        self.propagate_to_fixpoint(&mut know, &available, max_rounds)?;

        // The caller drove an instant, but some autonomous state clocks
        // (delay registers whose presence is still undetermined) were not
        // decided by the drives: try to tick each of them, so that
        // self-paced processes like the one-place buffer advance instead of
        // degenerating to absence — also when they are composed with
        // input-driven components whose signals are already present.  Each
        // register is tried separately and a tick is accepted only when the
        // tick set so far still extends to a *complete* valid instant —
        // independent state clocks may be in incompatible phases, and one
        // inconsistent register must not spoil the others' legal reactions.
        // When no tick is accepted the instant falls back to the un-ticked
        // resolution (for an otherwise-silent drive, the always-legal silent
        // reaction).  An empty drive list is silent outright.
        let mut completed: Option<BTreeMap<Name, Knowledge>> = None;
        let any_undetermined_register = registers
            .iter()
            .any(|(out, _, _)| know[out].presence.is_none());
        if !drives.is_empty() && any_undetermined_register {
            // `accepted` is the growing tick set before completion (so later
            // registers can still tick); `completed` tracks the completed
            // instant of the last accepted set.  The scan repeats until no
            // further tick is accepted, so a register whose tick only
            // becomes consistent once a partner clock has ticked is
            // retried.  (Mutually exclusive ticks remain first-wins in
            // `registers()` order — the greedy choice is deterministic but
            // not order-free.)
            let mut accepted = know.clone();
            loop {
                let mut progressed = false;
                for (out, _, _) in &registers {
                    if accepted[out].presence.is_some() {
                        continue;
                    }
                    let mut trial = accepted.clone();
                    Self::set_presence(&mut trial, out, true, &available)
                        .expect("the register's presence was undetermined");
                    if self
                        .propagate_to_fixpoint(&mut trial, &available, max_rounds)
                        .is_err()
                    {
                        continue;
                    }
                    // Ticks are speculative: any failure to extend the tick
                    // set to a complete valid instant — an inconsistent
                    // phase or a runtime fault on the ticked path — means
                    // the tick is not taken, never that the step fails.
                    // Faults surface when the faulting instant is actually
                    // driven.
                    let Ok(done) = self.complete_instant(trial.clone(), &available, max_rounds)
                    else {
                        continue;
                    };
                    // A tick whose instant consumes an input token the
                    // environment did not offer models a blocked read.  The
                    // presence check is not enough: forcing a sampled clock
                    // like `[a]` fabricates both the presence and the value
                    // of `a`, so the trial is checked against the drives
                    // themselves — except for inputs the *base* resolution
                    // already made present (backward propagation from the
                    // caller's own drives), which the no-tick fallback
                    // would contain just the same.
                    let phantom_input = self.kernel.inputs().any(|n| {
                        done[n].presence == Some(true)
                            && !provided.contains(n)
                            && know[n].presence != Some(true)
                    });
                    if !phantom_input {
                        accepted = trial;
                        completed = Some(done);
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
        let know = match completed {
            Some(k) => k,
            None => self.complete_instant(know, &available, max_rounds)?,
        };

        // Build the reaction before committing anything, so that a failed
        // instant leaves the simulator state untouched and the caller may
        // retry with a different drive.
        let mut reaction = Reaction::empty_on(signals.iter().cloned());
        let mut any = false;
        for (name, k) in &know {
            if k.presence == Some(true) {
                let value = k
                    .value
                    .expect("complete_instant guarantees present signals carry values");
                reaction.insert(name.clone(), value);
                any = true;
            }
        }
        if any {
            reaction.set_tag(Tag::new(self.instant));
        }

        // Commit the registers and the instant counter.
        for (out, arg, _) in registers {
            let arg_know = &know[&arg];
            if arg_know.presence == Some(true) {
                let v = arg_know
                    .value
                    .expect("complete_instant guarantees present signals carry values");
                self.registers.insert(out, v);
            }
        }
        self.instant += 1;
        Ok(reaction)
    }

    /// Convenience: runs one instant with every *input* of the process made
    /// available with the provided value (demand-driven), plus the explicit
    /// drives.
    pub fn step_with_inputs(&mut self, inputs: &[(&str, Value)]) -> Result<Reaction, SimError> {
        let drives: Vec<(&str, Drive)> = inputs
            .iter()
            .map(|(n, v)| (*n, Drive::Available(*v)))
            .collect();
        self.step(&drives)
    }

    // ---- propagation ------------------------------------------------------

    /// Completes a partially-resolved instant: unknown presence resolves to
    /// absence, one more equation pass computes values that become derivable
    /// once absences are settled, and the completed instant is checked —
    /// every constraint must hold and every present signal must carry a
    /// value.  Errors leave the simulator untouched (the knowledge map is
    /// consumed, not the state).
    fn complete_instant(
        &self,
        mut know: BTreeMap<Name, Knowledge>,
        available: &BTreeMap<Name, Value>,
        max_rounds: usize,
    ) -> Result<BTreeMap<Name, Knowledge>, SimError> {
        for k in know.values_mut() {
            if k.presence.is_none() {
                k.presence = Some(false);
            }
        }
        // Equations only: with every presence settled, the constraints can
        // derive nothing more and are instead checked by `validate`.
        self.propagate_equations_to_fixpoint(&mut know, available, max_rounds)?;
        self.validate(&know)?;
        for (name, k) in &know {
            if k.presence == Some(true) && k.value.is_none() {
                return Err(SimError::Unresolved {
                    signal: name.clone(),
                });
            }
        }
        Ok(know)
    }

    /// Propagates equations and constraints until no new fact is derived.
    fn propagate_to_fixpoint(
        &self,
        know: &mut BTreeMap<Name, Knowledge>,
        available: &BTreeMap<Name, Value>,
        max_rounds: usize,
    ) -> Result<(), SimError> {
        for _ in 0..max_rounds {
            let mut changed = self.propagate_equations_once(know, available)?;
            for (l, r) in self.kernel.constraints() {
                changed |= self.propagate_constraint(l, r, know, available)?;
            }
            if !changed {
                break;
            }
        }
        Ok(())
    }

    /// Propagates the equations alone until no new fact is derived.
    fn propagate_equations_to_fixpoint(
        &self,
        know: &mut BTreeMap<Name, Knowledge>,
        available: &BTreeMap<Name, Value>,
        max_rounds: usize,
    ) -> Result<(), SimError> {
        for _ in 0..max_rounds {
            if !self.propagate_equations_once(know, available)? {
                break;
            }
        }
        Ok(())
    }

    /// One pass over every equation; reports whether anything was derived.
    fn propagate_equations_once(
        &self,
        know: &mut BTreeMap<Name, Knowledge>,
        available: &BTreeMap<Name, Value>,
    ) -> Result<bool, SimError> {
        let mut changed = false;
        for eq in self.kernel.equations() {
            changed |= self.propagate_equation(eq, know, available)?;
        }
        Ok(changed)
    }

    fn set_presence(
        know: &mut BTreeMap<Name, Knowledge>,
        name: &Name,
        presence: bool,
        available: &BTreeMap<Name, Value>,
    ) -> Result<bool, SimError> {
        let k = know.get_mut(name).expect("declared signal");
        match k.presence {
            Some(p) if p == presence => Ok(false),
            Some(_) => Err(SimError::Contradiction {
                signal: name.clone(),
            }),
            None => {
                k.presence = Some(presence);
                if presence {
                    if let (None, Some(v)) = (k.value, available.get(name)) {
                        k.value = Some(*v);
                    }
                }
                Ok(true)
            }
        }
    }

    fn set_value(
        know: &mut BTreeMap<Name, Knowledge>,
        name: &Name,
        value: Value,
    ) -> Result<bool, SimError> {
        let k = know.get_mut(name).expect("declared signal");
        match k.value {
            Some(v) if v == value => Ok(false),
            Some(_) => Err(SimError::Contradiction {
                signal: name.clone(),
            }),
            None => {
                k.value = Some(value);
                Ok(true)
            }
        }
    }

    fn atom_presence(know: &BTreeMap<Name, Knowledge>, atom: &Atom) -> Option<bool> {
        match atom {
            Atom::Const(_) => Some(true),
            Atom::Var(n) => know[n].presence,
        }
    }

    fn atom_value(know: &BTreeMap<Name, Knowledge>, atom: &Atom) -> Option<Value> {
        match atom {
            Atom::Const(v) => Some(*v),
            Atom::Var(n) => know[n].value,
        }
    }

    fn propagate_equation(
        &self,
        eq: &KernelEq,
        know: &mut BTreeMap<Name, Knowledge>,
        available: &BTreeMap<Name, Value>,
    ) -> Result<bool, SimError> {
        let mut changed = false;
        match eq {
            KernelEq::Func { out, op, args } => {
                // All variable operands and the output are synchronous.
                let mut group: Vec<&Name> = vec![out];
                for a in args {
                    if let Atom::Var(n) = a {
                        group.push(n);
                    }
                }
                let known: Option<bool> = group.iter().find_map(|n| know[*n].presence);
                if let Some(p) = known {
                    for n in &group {
                        changed |= Self::set_presence(know, n, p, available)?;
                    }
                }
                if know[out].presence == Some(true) {
                    let vals: Option<Vec<Value>> =
                        args.iter().map(|a| Self::atom_value(know, a)).collect();
                    if let Some(vals) = vals {
                        let v = eval_op(*op, &vals)?;
                        changed |= Self::set_value(know, out, v)?;
                    }
                }
            }
            KernelEq::Delay { out, arg, .. } => {
                let known = know[out].presence.or(know[arg].presence);
                if let Some(p) = known {
                    changed |= Self::set_presence(know, out, p, available)?;
                    changed |= Self::set_presence(know, arg, p, available)?;
                }
                if know[out].presence == Some(true) {
                    let reg = self.registers[out];
                    changed |= Self::set_value(know, out, reg)?;
                }
            }
            KernelEq::When { out, arg, cond } => {
                let cond_presence = know[cond].presence;
                let cond_value = know[cond].value;
                let cond_true = match (cond_presence, cond_value) {
                    (Some(false), _) => Some(false),
                    (Some(true), Some(v)) => Some(v.is_true()),
                    _ => None,
                };
                match cond_true {
                    Some(false) => {
                        changed |= Self::set_presence(know, out, false, available)?;
                    }
                    Some(true) => match arg {
                        Atom::Const(v) => {
                            changed |= Self::set_presence(know, out, true, available)?;
                            changed |= Self::set_value(know, out, *v)?;
                        }
                        Atom::Var(y) => {
                            if let Some(p) = know[y].presence.or(know[out].presence) {
                                changed |= Self::set_presence(know, out, p, available)?;
                                changed |= Self::set_presence(know, y, p, available)?;
                            }
                            if know[out].presence == Some(true) {
                                if let Some(v) = know[y].value {
                                    changed |= Self::set_value(know, out, v)?;
                                }
                            }
                        }
                    },
                    None => {}
                }
                // Backward: if the output is present, the condition is
                // present and true, and a variable operand is present.
                if know[out].presence == Some(true) {
                    changed |= Self::set_presence(know, cond, true, available)?;
                    changed |= Self::set_value(know, cond, Value::Bool(true))?;
                    if let Atom::Var(y) = arg {
                        changed |= Self::set_presence(know, y, true, available)?;
                    }
                }
            }
            KernelEq::Default { out, left, right } => {
                let lp = Self::atom_presence(know, left);
                let rp = Self::atom_presence(know, right);
                // Forward presence.
                match (left, lp) {
                    (Atom::Var(_), Some(true)) => {
                        changed |= Self::set_presence(know, out, true, available)?;
                        if let Some(v) = Self::atom_value(know, left) {
                            changed |= Self::set_value(know, out, v)?;
                        }
                    }
                    (Atom::Var(_), Some(false)) => {
                        if let Atom::Var(z) = right {
                            if let Some(p) = know[z].presence {
                                changed |= Self::set_presence(know, out, p, available)?;
                                if p {
                                    if let Some(v) = know[z].value {
                                        changed |= Self::set_value(know, out, v)?;
                                    }
                                }
                            }
                            // If out is known present and left absent, the
                            // alternative must be present.
                            if know[out].presence == Some(true) {
                                changed |= Self::set_presence(know, z, true, available)?;
                                if let Some(v) = know[z].value {
                                    changed |= Self::set_value(know, out, v)?;
                                }
                            }
                        } else if know[out].presence == Some(true) {
                            if let Some(v) = Self::atom_value(know, right) {
                                changed |= Self::set_value(know, out, v)?;
                            }
                        }
                    }
                    (Atom::Const(v), _) => {
                        // A constant priority operand: the output carries it
                        // whenever present.
                        if know[out].presence == Some(true) {
                            changed |= Self::set_value(know, out, *v)?;
                        }
                    }
                    (Atom::Var(_), None) => {}
                }
                // Backward presence: out absent => both variable operands
                // absent; out present with both operands variables and
                // right absent => left present.
                if know[out].presence == Some(false) {
                    if let Atom::Var(y) = left {
                        changed |= Self::set_presence(know, y, false, available)?;
                    }
                    if let Atom::Var(z) = right {
                        changed |= Self::set_presence(know, z, false, available)?;
                    }
                }
                if know[out].presence == Some(true) && rp == Some(false) {
                    if let Atom::Var(y) = left {
                        changed |= Self::set_presence(know, y, true, available)?;
                        if let Some(v) = know[y].value {
                            changed |= Self::set_value(know, out, v)?;
                        }
                    }
                }
            }
        }
        Ok(changed)
    }

    fn propagate_constraint(
        &self,
        left: &ClockAst,
        right: &ClockAst,
        know: &mut BTreeMap<Name, Knowledge>,
        available: &BTreeMap<Name, Value>,
    ) -> Result<bool, SimError> {
        let lv = eval_clock(left, know);
        let rv = eval_clock(right, know);
        let mut changed = false;
        match (lv, rv) {
            (Some(a), Some(b)) if a != b => {
                return Err(SimError::ClockConstraintViolation {
                    constraint: format!("{left} ^= {right}"),
                });
            }
            (Some(v), None) => changed |= force_clock(right, v, know, available)?,
            (None, Some(v)) => changed |= force_clock(left, v, know, available)?,
            _ => {}
        }
        Ok(changed)
    }

    /// Validates the completed instant: every clock constraint must hold and
    /// every equation must be presence-consistent.
    fn validate(&self, know: &BTreeMap<Name, Knowledge>) -> Result<(), SimError> {
        for (l, r) in self.kernel.constraints() {
            let lv = eval_clock(l, know);
            let rv = eval_clock(r, know);
            if lv.is_some() && rv.is_some() && lv != rv {
                return Err(SimError::ClockConstraintViolation {
                    constraint: format!("{l} ^= {r}"),
                });
            }
        }
        for eq in self.kernel.equations() {
            let out = eq.defined();
            let out_present = know[out].presence == Some(true);
            let consistent = match eq {
                KernelEq::Func { args, .. } => {
                    let vars_present: Vec<bool> = args
                        .iter()
                        .filter_map(|a| a.as_var())
                        .map(|n| know[n].presence == Some(true))
                        .collect();
                    vars_present.iter().all(|p| *p == out_present)
                }
                KernelEq::Delay { arg, .. } => (know[arg].presence == Some(true)) == out_present,
                KernelEq::When { arg, cond, .. } => {
                    let cond_on = know[cond].presence == Some(true)
                        && know[cond].value.map(Value::is_true).unwrap_or(false);
                    let arg_on = match arg {
                        Atom::Const(_) => true,
                        Atom::Var(y) => know[y].presence == Some(true),
                    };
                    out_present == (cond_on && arg_on)
                }
                KernelEq::Default { left, right, .. } => {
                    let left_on = match left {
                        Atom::Const(_) => true,
                        Atom::Var(y) => know[y].presence == Some(true),
                    };
                    let right_on = match right {
                        Atom::Const(_) => out_present,
                        Atom::Var(z) => know[z].presence == Some(true),
                    };
                    out_present == (left_on || right_on) || (out_present && (left_on || right_on))
                }
            };
            if !consistent {
                return Err(SimError::ClockConstraintViolation {
                    constraint: format!("{eq}"),
                });
            }
        }
        Ok(())
    }
}

/// Three-valued evaluation of a clock expression under partial knowledge.
fn eval_clock(clock: &ClockAst, know: &BTreeMap<Name, Knowledge>) -> Option<bool> {
    match clock {
        ClockAst::Zero => Some(false),
        ClockAst::Of(n) => know.get(n).and_then(|k| k.presence),
        ClockAst::WhenTrue(n) => sample(know, n, true),
        ClockAst::WhenFalse(n) => sample(know, n, false),
        ClockAst::And(a, b) => kleene_and(eval_clock(a, know), eval_clock(b, know)),
        ClockAst::Or(a, b) => kleene_or(eval_clock(a, know), eval_clock(b, know)),
        ClockAst::Diff(a, b) => kleene_and(eval_clock(a, know), eval_clock(b, know).map(|v| !v)),
    }
}

fn sample(know: &BTreeMap<Name, Knowledge>, n: &Name, polarity: bool) -> Option<bool> {
    let k = know.get(n)?;
    match k.presence {
        Some(false) => Some(false),
        Some(true) => k.value.map(|v| v.is_true() == polarity),
        None => None,
    }
}

fn kleene_and(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn kleene_or(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// Best-effort forcing of a clock expression to a truth value.
fn force_clock(
    clock: &ClockAst,
    target: bool,
    know: &mut BTreeMap<Name, Knowledge>,
    available: &BTreeMap<Name, Value>,
) -> Result<bool, SimError> {
    let mut changed = false;
    match clock {
        ClockAst::Zero => {
            if target {
                return Err(SimError::ClockConstraintViolation {
                    constraint: "^0 forced present".into(),
                });
            }
        }
        ClockAst::Of(n) => {
            changed |= Simulator::set_presence(know, n, target, available)?;
        }
        ClockAst::WhenTrue(n) | ClockAst::WhenFalse(n) => {
            let polarity = matches!(clock, ClockAst::WhenTrue(_));
            if target {
                changed |= Simulator::set_presence(know, n, true, available)?;
                changed |= Simulator::set_value(know, n, Value::Bool(polarity))?;
            } else {
                // Not (present ∧ value=polarity): only conclusive when one
                // half is already known.
                let k = know[n];
                if k.presence == Some(true) {
                    changed |= Simulator::set_value(know, n, Value::Bool(!polarity))?;
                } else if k.value.map(|v| v.is_true() == polarity).unwrap_or(false) {
                    changed |= Simulator::set_presence(know, n, false, available)?;
                }
            }
        }
        ClockAst::And(a, b) => {
            if target {
                changed |= force_clock(a, true, know, available)?;
                changed |= force_clock(b, true, know, available)?;
            } else {
                // ¬(a ∧ b): conclusive only if one side is known true.
                if eval_clock(a, know) == Some(true) {
                    changed |= force_clock(b, false, know, available)?;
                } else if eval_clock(b, know) == Some(true) {
                    changed |= force_clock(a, false, know, available)?;
                }
            }
        }
        ClockAst::Or(a, b) => {
            if !target {
                changed |= force_clock(a, false, know, available)?;
                changed |= force_clock(b, false, know, available)?;
            } else if eval_clock(a, know) == Some(false) {
                changed |= force_clock(b, true, know, available)?;
            } else if eval_clock(b, know) == Some(false) {
                changed |= force_clock(a, true, know, available)?;
            }
        }
        ClockAst::Diff(a, b) => {
            if target {
                changed |= force_clock(a, true, know, available)?;
                changed |= force_clock(b, false, know, available)?;
            } else if eval_clock(a, know) == Some(true) {
                changed |= force_clock(b, true, know, available)?;
            } else if eval_clock(b, know) == Some(false) {
                changed |= force_clock(a, false, know, available)?;
            }
        }
    }
    Ok(changed)
}

/// Evaluates a primitive operator on concrete values.
fn eval_op(op: PrimOp, args: &[Value]) -> Result<Value, SimError> {
    let int = |v: &Value| {
        v.as_int().ok_or_else(|| SimError::Evaluation {
            message: format!("expected an integer, found {v}"),
        })
    };
    let boolean = |v: &Value| {
        v.as_bool().ok_or_else(|| SimError::Evaluation {
            message: format!("expected a boolean, found {v}"),
        })
    };
    let value = match (op, args) {
        (PrimOp::Id, [a]) => *a,
        (PrimOp::Not, [a]) => Value::Bool(!boolean(a)?),
        (PrimOp::Neg, [a]) => Value::Int(-int(a)?),
        (PrimOp::And, [a, b]) => Value::Bool(boolean(a)? && boolean(b)?),
        (PrimOp::Or, [a, b]) => Value::Bool(boolean(a)? || boolean(b)?),
        (PrimOp::Xor, [a, b]) => Value::Bool(boolean(a)? ^ boolean(b)?),
        (PrimOp::Add, [a, b]) => Value::Int(int(a)?.wrapping_add(int(b)?)),
        (PrimOp::Sub, [a, b]) => Value::Int(int(a)?.wrapping_sub(int(b)?)),
        (PrimOp::Mul, [a, b]) => Value::Int(int(a)?.wrapping_mul(int(b)?)),
        (PrimOp::Div, [a, b]) => {
            let d = int(b)?;
            if d == 0 {
                return Err(SimError::Evaluation {
                    message: "division by zero".into(),
                });
            }
            Value::Int(int(a)? / d)
        }
        (PrimOp::Eq, [a, b]) => Value::Bool(a == b),
        (PrimOp::Ne, [a, b]) => Value::Bool(a != b),
        (PrimOp::Lt, [a, b]) => Value::Bool(int(a)? < int(b)?),
        (PrimOp::Le, [a, b]) => Value::Bool(int(a)? <= int(b)?),
        (PrimOp::Gt, [a, b]) => Value::Bool(int(a)? > int(b)?),
        (PrimOp::Ge, [a, b]) => Value::Bool(int(a)? >= int(b)?),
        _ => {
            return Err(SimError::Evaluation {
                message: format!("operator {op} applied to {} operands", args.len()),
            })
        }
    };
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use signal_lang::stdlib;

    fn bool_drive(v: bool) -> Drive {
        Drive::Present(Value::Bool(v))
    }

    #[test]
    fn filter_reproduces_the_paper_trace() {
        // y: 1 0 0 1 1 0  =>  x at positions 2, 4, 6 (value changes).
        let kernel = stdlib::filter().normalize().unwrap();
        let mut sim = Simulator::new(&kernel);
        let inputs = [true, false, false, true, true, false];
        let mut xs = Vec::new();
        for v in inputs {
            let r = sim.step(&[("y", bool_drive(v))]).expect("steps");
            xs.push(r.is_present("x"));
        }
        assert_eq!(xs, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn buffer_alternates_between_reading_and_writing() {
        let kernel = stdlib::buffer().normalize().unwrap();
        let mut sim = Simulator::with_activation(&kernel, ["t"]);
        let mut written = Vec::new();
        let mut read = Vec::new();
        for i in 0..8 {
            let r = sim
                .step(&[("y", Drive::Available(Value::Int(i)))])
                .expect("steps");
            if r.is_present("x") {
                written.push(r.value("x").unwrap());
            }
            if r.is_present("y") {
                read.push(r.value("y").unwrap());
            }
            // x and y are mutually exclusive.
            assert!(!(r.is_present("x") && r.is_present("y")));
        }
        // The buffer starts by emitting (t is initially true since s starts
        // at true and t = not s... the first instant emits or reads depending
        // on the initial state), then alternates strictly.
        assert_eq!(written.len() + read.len(), 8);
        assert_eq!(written.len(), 4);
        assert_eq!(read.len(), 4);
        // Every written value was read one activation earlier.
        for (w, r) in written.iter().zip(read.iter()) {
            assert_eq!(w, r);
        }
    }

    #[test]
    fn producer_counts_separately_on_each_branch() {
        let kernel = stdlib::producer().normalize().unwrap();
        let mut sim = Simulator::new(&kernel);
        // a = true, true, false, true, false
        let expected_u = [1, 2, 2, 3, 3];
        let expected_x = [0, 0, 1, 1, 2];
        let mut u = 0;
        let mut x = 0;
        for (i, a) in [true, true, false, true, false].into_iter().enumerate() {
            let r = sim.step(&[("a", bool_drive(a))]).expect("steps");
            if let Some(v) = r.value("u") {
                u = v.as_int().unwrap();
            }
            if let Some(v) = r.value("x") {
                x = v.as_int().unwrap();
            }
            assert_eq!(u, expected_u[i], "u at instant {i}");
            assert_eq!(x, expected_x[i], "x at instant {i}");
        }
    }

    #[test]
    fn consumer_accumulates_x_or_one() {
        let kernel = stdlib::consumer().normalize().unwrap();
        let mut sim = Simulator::new(&kernel);
        // b=true with x=5: v=5 ; b=false: v=6 ; b=true with x=2: v=8.
        let r = sim
            .step(&[
                ("b", bool_drive(true)),
                ("x", Drive::Present(Value::Int(5))),
            ])
            .expect("step 1");
        assert_eq!(r.value("v"), Some(Value::Int(5)));
        let r = sim
            .step(&[("b", bool_drive(false)), ("x", Drive::Absent)])
            .expect("step 2");
        assert_eq!(r.value("v"), Some(Value::Int(6)));
        let r = sim
            .step(&[
                ("b", bool_drive(true)),
                ("x", Drive::Present(Value::Int(2))),
            ])
            .expect("step 3");
        assert_eq!(r.value("v"), Some(Value::Int(8)));
    }

    #[test]
    fn violating_a_clock_constraint_is_an_error_and_preserves_state() {
        let kernel = stdlib::consumer().normalize().unwrap();
        let mut sim = Simulator::new(&kernel);
        // x must be present iff b is true; drive x while b is false.
        let err = sim
            .step(&[
                ("b", bool_drive(false)),
                ("x", Drive::Present(Value::Int(1))),
            ])
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::ClockConstraintViolation { .. } | SimError::Contradiction { .. }
        ));
    }

    #[test]
    fn self_paced_state_clocks_tick_on_explicitly_driven_instants() {
        // Regression: the buffer's state clock s/t is autonomous — no input
        // forces it.  Driving an instant with y explicitly absent must still
        // advance the state and emit x at a writing instant, instead of
        // degenerating to the silent reaction; and a failed (ill-driven)
        // step must leave the state untouched so that this recovery works.
        let kernel = stdlib::buffer().normalize().unwrap();
        let mut sim = Simulator::new(&kernel);
        // Reading instant: y is consumed.
        let r = sim
            .step(&[("y", Drive::Present(Value::Bool(true)))])
            .expect("reading instant");
        assert!(r.is_present("y"));
        assert!(!r.is_present("x"));
        // Writing instant, ill-driven: y forced present is a clock violation.
        sim.step(&[("y", Drive::Present(Value::Bool(false)))])
            .expect_err("y forced present at a writing instant");
        // Writing instant, correctly driven: y absent, x carries the value.
        let r = sim.step(&[("y", Drive::Absent)]).expect("writing instant");
        assert!(r.is_present("x"), "state clock ticks and x is emitted");
        assert_eq!(r.value("x"), Some(Value::Bool(true)));
        // The empty drive list still yields the silent reaction.
        let r = sim.step(&[]).expect("silence stays legal");
        assert!(r.is_silent());
    }

    #[test]
    fn inconsistent_ticks_fall_back_to_the_silent_reaction() {
        // Regression: at a *reading* instant (the buffer's initial state)
        // driving y absent admits no consistent tick — ticking the state
        // clock would demand y present.  The instant must degrade to the
        // always-legal silent reaction, not to an error.
        let kernel = stdlib::buffer().normalize().unwrap();
        let mut sim = Simulator::new(&kernel);
        let r = sim
            .step(&[("y", Drive::Absent)])
            .expect("silence is legal when no tick is consistent");
        assert!(r.is_silent());
        // The state did not advance: the buffer still reads y first.
        let r = sim
            .step(&[("y", Drive::Present(Value::Bool(true)))])
            .expect("reading instant");
        assert!(r.is_present("y"));
    }

    #[test]
    fn self_paced_components_tick_alongside_driven_ones() {
        // Regression: presence elsewhere in a composed kernel must not
        // suppress the autonomous tick of an unrelated component.  Here a
        // buffer (self-paced) is composed with a stateless input-driven
        // adder; at the buffer's writing instant the adder's input is
        // present, and the buffer must still emit x.
        let def = signal_lang::ProcessBuilder::new("mixed")
            .include(&stdlib::buffer())
            .define(
                "w",
                signal_lang::Expr::var("p").add(signal_lang::Expr::cst(1)),
            )
            .input("p")
            .output("w")
            .build()
            .unwrap();
        let kernel = def.normalize().unwrap();
        let mut sim = Simulator::new(&kernel);
        // Reading instant: the buffer consumes y while the adder runs.
        let r = sim
            .step(&[
                ("y", Drive::Present(Value::Bool(true))),
                ("p", Drive::Present(Value::Int(1))),
            ])
            .expect("reading instant");
        assert!(r.is_present("y"));
        assert_eq!(r.value("w"), Some(Value::Int(2)));
        // Writing instant: p present must not stop the buffer's state clock.
        let r = sim
            .step(&[("y", Drive::Absent), ("p", Drive::Present(Value::Int(2)))])
            .expect("writing instant");
        assert_eq!(r.value("w"), Some(Value::Int(3)));
        assert_eq!(r.value("x"), Some(Value::Bool(true)), "x emitted: {r:?}");
    }

    #[test]
    fn uncompletable_ticks_fall_back_to_silence_in_composed_kernels() {
        // Regression: in the LTTA bus the tick trial can be fixpoint-
        // consistent yet fail validation once the remaining unknowns
        // resolve to absence.  Such a tick must be dropped in favour of the
        // silent reaction, not surface as a ClockConstraintViolation.
        let kernel = stdlib::ltta_bus().normalize().unwrap();
        let inputs: Vec<String> = kernel.inputs().map(|n| n.to_string()).collect();
        let mut sim = Simulator::new(&kernel);
        let drives: Vec<(&str, Drive)> =
            inputs.iter().map(|n| (n.as_str(), Drive::Absent)).collect();
        let r = sim
            .step(&drives)
            .expect("all-absent drives stay a legal instant");
        assert!(r.is_silent());
    }

    #[test]
    fn speculative_ticks_cannot_fabricate_undriven_inputs() {
        // Regression: in the producer/consumer pair, driving only b must
        // not let the producer's register ticks invent the undriven input
        // a — forcing the sampled clock [a] would fabricate both a's
        // presence and its value.  Only the consumer's own accumulator may
        // advance (b = false means v := 1 + previous).
        let kernel = stdlib::producer_consumer().normalize().unwrap();
        let mut sim = Simulator::new(&kernel);
        let r = sim
            .step(&[("b", Drive::Present(Value::Bool(false)))])
            .expect("a legal instant for the consumer half");
        assert!(!r.is_present("a"), "undriven input a fabricated: {r:?}");
        assert!(!r.is_present("u"), "u runs on [a], which did not tick");
        assert_eq!(r.value("v"), Some(Value::Int(1)));
    }

    #[test]
    fn inputs_forced_by_the_base_drives_do_not_veto_ticks() {
        // Regression: an input made present by backward propagation from
        // the caller's own drives (here c, forced by driving the `when`
        // output o) is not a phantom — the no-tick fallback would contain
        // it just the same, so it must not veto the buffer's state tick.
        let def = signal_lang::ProcessBuilder::new("mixed2")
            .include(&stdlib::buffer())
            .define(
                "o",
                signal_lang::Expr::var("k").when(signal_lang::Expr::var("c")),
            )
            .inputs(["k", "c"])
            .output("o")
            .build()
            .unwrap();
        let kernel = def.normalize().unwrap();
        let mut sim = Simulator::new(&kernel);
        let drives = |y: Drive| {
            [
                ("y", y),
                ("k", Drive::Present(Value::Int(7))),
                ("o", Drive::Tick),
            ]
        };
        // Reading instant: o is computed while the buffer consumes y.
        let r = sim
            .step(&drives(Drive::Present(Value::Bool(true))))
            .expect("reading instant");
        assert_eq!(r.value("o"), Some(Value::Int(7)));
        assert!(r.is_present("y"));
        // Writing instant: c present-but-unprovided must not stall x.
        let r = sim.step(&drives(Drive::Absent)).expect("writing instant");
        assert_eq!(r.value("o"), Some(Value::Int(7)));
        assert_eq!(r.value("x"), Some(Value::Bool(true)), "x stalled: {r:?}");
    }

    #[test]
    fn failed_steps_do_not_commit_the_delay_registers() {
        // Regression: a step that fails late (present signal without a
        // value) must not have flipped the state registers, otherwise the
        // documented retry contract is broken and the simulator wedges.
        let kernel = stdlib::buffer().normalize().unwrap();
        let mut sim = Simulator::new(&kernel);
        let registers_before = sim.registers().clone();
        // y ticked without a value: the instant resolves but y's value is
        // unresolvable, which must be an error...
        let err = sim.step(&[("y", Drive::Tick)]).expect_err("y has no value");
        assert!(matches!(err, SimError::Unresolved { .. }), "got {err}");
        // ...that left the delay registers exactly as they were...
        assert_eq!(
            sim.registers(),
            &registers_before,
            "a failed step must not commit the registers"
        );
        // ...so the buffer still reads, and the successful step advances.
        let r = sim
            .step(&[("y", Drive::Present(Value::Bool(true)))])
            .expect("the reading instant still works after the failure");
        assert!(r.is_present("y"));
        assert_ne!(
            sim.registers(),
            &registers_before,
            "the successful step advances the state"
        );
    }

    #[test]
    fn independent_state_clocks_are_not_forced_into_lockstep() {
        // Regression: the chained buffer pair has two autonomous flip
        // states in opposite phases.  Ticking every register at once would
        // contradict itself and make the composed kernel permanently
        // unsteppable; per-register ticking must keep it executable.
        let kernel = stdlib::buffer_pair().normalize().unwrap();
        let mut sim = Simulator::new(&kernel);
        let mut progressed = false;
        for i in 0..8 {
            let r = sim
                .step(&[
                    ("y", Drive::Available(Value::Int(i))),
                    ("b", Drive::Available(Value::Bool(true))),
                ])
                .expect("the composed kernel stays steppable");
            progressed |= !r.is_silent();
        }
        assert!(progressed, "the buffer pair makes progress");
    }

    #[test]
    fn unknown_signals_are_rejected() {
        let kernel = stdlib::filter().normalize().unwrap();
        let mut sim = Simulator::new(&kernel);
        assert!(matches!(
            sim.step(&[("nope", Drive::Tick)]),
            Err(SimError::UnknownSignal(_))
        ));
    }

    #[test]
    fn silence_is_always_a_legal_reaction() {
        for def in [stdlib::filter(), stdlib::producer(), stdlib::consumer()] {
            let kernel = def.normalize().unwrap();
            let mut sim = Simulator::new(&kernel);
            let r = sim.step(&[]).expect("silent step");
            assert!(r.is_silent());
        }
    }

    #[test]
    fn eval_op_covers_arithmetic_and_logic() {
        assert_eq!(
            eval_op(PrimOp::Add, &[Value::Int(2), Value::Int(3)]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval_op(PrimOp::Ne, &[Value::Bool(true), Value::Bool(false)]).unwrap(),
            Value::Bool(true)
        );
        assert!(eval_op(PrimOp::Div, &[Value::Int(1), Value::Int(0)]).is_err());
        assert!(eval_op(PrimOp::And, &[Value::Int(1), Value::Bool(true)]).is_err());
    }
}
