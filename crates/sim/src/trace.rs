//! Recording executions as behaviors of the polychronous model.

use moc::{Behavior, Reaction, Tag, TraceSet};

/// Accumulates the reactions of an execution into a [`Behavior`], so that
/// executions can be compared with the clock- and flow-equivalences of the
/// model of computation.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    behavior: Behavior,
    next_tag: u64,
}

impl TraceRecorder {
    /// Creates a recorder over the given signal names.
    pub fn new<I, N>(signals: I) -> Self
    where
        I: IntoIterator<Item = N>,
        N: Into<moc::Name>,
    {
        TraceRecorder {
            behavior: Behavior::empty_on(signals),
            next_tag: 0,
        }
    }

    /// Records one reaction.  Silent reactions advance logical time but add
    /// no event.
    pub fn record(&mut self, reaction: &Reaction) {
        let tag = Tag::new(self.next_tag);
        self.next_tag += 1;
        for (name, value) in reaction.events() {
            if self.behavior.contains(name.as_str()) {
                self.behavior.insert_event(name.clone(), tag, value);
            }
        }
    }

    /// The behavior recorded so far.
    pub fn behavior(&self) -> &Behavior {
        &self.behavior
    }

    /// Consumes the recorder and returns the behavior.
    pub fn into_behavior(self) -> Behavior {
        self.behavior
    }

    /// Wraps the recorded behavior into a singleton trace set (useful to
    /// compare flows with [`TraceSet::same_flows_as`]).
    pub fn into_trace_set(self) -> TraceSet {
        let domain: Vec<moc::Name> = self.behavior.domain_set().into_iter().collect();
        TraceSet::from_behaviors(domain, vec![self.behavior])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc::Value;

    #[test]
    fn records_only_declared_signals() {
        let mut rec = TraceRecorder::new(["x"]);
        let mut r = Reaction::empty_on(["x", "y"]);
        r.set_tag(Tag::new(0));
        r.insert("x", Value::from(1));
        r.insert("y", Value::from(2));
        rec.record(&r);
        let b = rec.behavior();
        assert_eq!(b.stream("x").unwrap().len(), 1);
        assert!(!b.contains("y"));
    }

    #[test]
    fn silent_reactions_advance_time_without_events() {
        let mut rec = TraceRecorder::new(["x"]);
        let silent = Reaction::empty_on(["x"]);
        rec.record(&silent);
        let mut r = Reaction::empty_on(["x"]);
        r.set_tag(Tag::new(7));
        r.insert("x", Value::from(true));
        rec.record(&r);
        let b = rec.into_behavior();
        // The event is recorded at the recorder's own tag (1), not the
        // reaction's.
        assert_eq!(
            b.stream("x").unwrap().tags().collect::<Vec<_>>(),
            vec![Tag::new(1)]
        );
    }

    #[test]
    fn into_trace_set_wraps_the_behavior() {
        let mut rec = TraceRecorder::new(["x"]);
        let mut r = Reaction::empty_on(["x"]);
        r.set_tag(Tag::new(0));
        r.insert("x", Value::from(3));
        rec.record(&r);
        let set = rec.into_trace_set();
        assert_eq!(set.len(), 1);
        assert!(set.domain_set().contains("x"));
    }
}
