//! Experiment E4 — the buffer example of Section 3: clock relations, clock
//! hierarchy, scheduling graph and generated transition function.
//!
//! ```text
//! cargo run --example buffer
//! ```

use polychrony::clocks::ClockAnalysis;
use polychrony::codegen;
use polychrony::signal_lang::stdlib;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = stdlib::buffer().normalize()?;
    let analysis = ClockAnalysis::analyze(&kernel);

    println!("== Timing relations R_buffer ==\n{}", analysis.relations());
    println!("== Clock hierarchy (paper figure, Section 3.3) ==");
    println!("{}", analysis.hierarchy().render());
    println!(
        "== Disjunctive form (Section 3.4) ==\n{}",
        analysis.disjunctive()
    );
    println!(
        "== Scheduling graph (Section 3.5) ==\n{}",
        analysis.scheduling_graph()
    );
    println!("== Verdicts ==\n{}", analysis.summary());

    let program = codegen::seq::generate(&analysis);
    println!("\n== Step program ==\n{program}");
    println!(
        "== Generated C (Section 3.6 listing) ==\n{}",
        codegen::emit::emit_c(&program)
    );
    Ok(())
}
