//! The GALS deployment runtime end to end: build a pipeline of one-place
//! buffers, verify the weak-hierarchy criterion, deploy each stage on its
//! own OS thread with bounded channels, and check dynamic isochrony
//! conformance against the synchronous reference.
//!
//! ```text
//! cargo run --example deploy
//! ```

use polychrony::isochron::library;
use polychrony::moc::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A four-stage pipeline: stage i reads p{i} and writes p{i+1}.
    let design = library::buffer_pipeline_design(4)?;
    println!("== Static criterion (Definition 12 / Theorem 1) ==");
    println!("{}", design.verdict());

    // Deploy: one OS thread per stage, bounded channels in between.
    let mut deployment = design.deploy()?;
    deployment.set_capacity(8);
    let stream: Vec<Value> = (0..16).map(|i| Value::Bool(i % 3 != 1)).collect();
    deployment.feed("p0", stream.iter().copied());
    let outcome = deployment.run()?;

    println!("== Deployment ==");
    println!("{}", outcome.stats());
    println!("fed      p0 = {:?}", stream);
    println!("received p4 = {:?}", outcome.flow("p4"));

    // Dynamic isochrony: the deployed flows must equal the synchronous
    // reference replay (Theorem 1, observed).
    let report = outcome.check_conformance()?;
    println!("== Conformance ==");
    println!("{report}");
    assert!(report.is_isochronous());
    Ok(())
}
