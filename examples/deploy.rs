//! The GALS deployment runtime end to end: build a pipeline of one-place
//! buffers, verify the weak-hierarchy criterion, deploy each stage on its
//! own OS thread with bounded channels, and check dynamic isochrony
//! conformance against the synchronous reference.
//!
//! The channel medium is pluggable: a `ChannelPolicy` picks the backend
//! (the lock-free SPSC ring by default, the mpsc channel on request) and
//! sizes each channel individually — the resolved per-edge capacity and
//! backend are reported by `topology()`.
//!
//! Capacities need not be hand-tuned at all: `Design::deploy_derived`
//! sizes every channel from the clock calculus — the same relations that
//! prove the design isochronous bound its FIFOs (`ChannelSizing::Derived`,
//! provenance reported per edge).
//!
//! The thread mapping is selectable too: the default
//! `ExecutionMode::ThreadPerComponent` dedicates one OS thread per stage,
//! while `ExecutionMode::Pool { workers, quantum }` multiplexes every
//! stage onto a fixed work-stealing pool — each dispatch steps a ready
//! stage up to `quantum` reactions, so a deployment of hundreds of
//! components still runs on a handful of threads.
//!
//! ```text
//! cargo run --example deploy
//! ```

use polychrony::gals_rt::{Backend, ExecutionMode, MachineKind};
use polychrony::isochron::library;
use polychrony::moc::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A four-stage pipeline: stage i reads p{i} and writes p{i+1}.
    let design = library::buffer_pipeline_design(4)?;
    println!("== Static criterion (Definition 12 / Theorem 1) ==");
    println!("{}", design.verdict());

    // Deploy: one OS thread per stage, bounded channels in between.  The
    // policy sets a default capacity, deepens the p2 channel specifically,
    // and selects the lock-free SPSC ring explicitly (what Backend::Auto
    // would pick anyway: every derived edge is point-to-point).
    let mut deployment = design.deploy()?;
    deployment.set_backend(Backend::SpscRing);
    deployment.set_capacity(8)?;
    deployment.set_channel_capacity("p2", 32)?;

    println!("== Channel topology (policy resolved per edge) ==");
    for spec in &deployment.topology()?.channels {
        println!(
            "  {} -> {}  signal {:<3} capacity {:>3} ({})  backend {}",
            spec.producer, spec.consumer, spec.signal, spec.capacity, spec.source, spec.backend
        );
    }

    let stream: Vec<Value> = (0..16).map(|i| Value::Bool(i % 3 != 1)).collect();
    deployment.feed("p0", stream.iter().copied());
    let outcome = deployment.run()?;

    println!("== Deployment ==");
    println!("{}", outcome.stats());
    println!("fed      p0 = {:?}", stream);
    println!("received p4 = {:?}", outcome.flow("p4"));

    // Dynamic isochrony: the deployed flows must equal the synchronous
    // reference replay (Theorem 1, observed).
    let report = outcome.check_conformance()?;
    println!("== Conformance ==");
    println!("{report}");
    assert!(report.is_isochronous());

    // Each stage above ran as a *compiled* step machine (the default
    // `MachineKind::Compiled`): the step program is lowered once to dense
    // slot indices and postfix clock code, and the hot loop allocates
    // nothing.  Execution strategy is an observable-free choice — the tree
    // -walking interpreter must produce the very same flows.
    let mut interpreted = design.deploy_with(MachineKind::Interpreted)?;
    interpreted.feed("p0", stream.iter().copied());
    let interpreted_outcome = interpreted.run()?;
    assert_eq!(interpreted_outcome.flow("p4"), outcome.flow("p4"));
    println!(
        "machine kinds agree: p4 identical over {} and {} machines",
        interpreted_outcome
            .stats()
            .machine_kind
            .expect("kind recorded"),
        outcome.stats().machine_kind.expect("kind recorded"),
    );

    // Isochrony is transport-agnostic: the same pipeline over the mpsc
    // backend observes exactly the same flows.
    let mut mpsc = design.deploy()?;
    mpsc.set_backend(Backend::Mpsc);
    mpsc.feed("p0", stream.iter().copied());
    let mpsc_outcome = mpsc.run()?;
    assert_eq!(mpsc_outcome.flow("p4"), outcome.flow("p4"));
    println!(
        "mpsc backend agrees: p4 identical over {} and {}",
        mpsc_outcome.stats().backend,
        outcome.stats().backend
    );

    // ... and scheduler-agnostic: the same four stages multiplexed onto a
    // 2-worker work-stealing pool (each dispatch batches up to 8 reactions)
    // observe the same flows again — on 2 OS threads instead of 4.  The
    // stats record the mode and the per-worker dispatch/steal counters.
    let mut pooled = design.deploy()?;
    pooled.set_execution_mode(ExecutionMode::Pool {
        workers: 2,
        quantum: 8,
    })?;
    pooled.feed("p0", stream.iter().copied());
    let pooled_outcome = pooled.run()?;
    assert_eq!(pooled_outcome.flow("p4"), outcome.flow("p4"));
    println!("== Pool scheduler ==");
    println!("{}", pooled_outcome.stats());
    assert!(pooled_outcome.check_conformance()?.is_isochronous());

    // The capacities above were hand-tuned (8, with p2 deepened to 32).
    // The clock calculus can derive them instead: every edge of the
    // verified pipeline is provably a one-place buffer — the same
    // relations that prove isochrony bound the FIFOs, each edge reporting
    // its bound and why.
    let mut derived = design.deploy_derived()?;
    println!("== Derived capacities (ChannelSizing::Derived) ==");
    for spec in &derived.topology()?.channels {
        println!(
            "  signal {:<3} capacity {} ({}) — {}",
            spec.signal,
            spec.capacity,
            spec.source,
            spec.derivation.as_deref().unwrap_or("-")
        );
    }
    // The same clock words also predict the run before it starts: each
    // stage's steady-state reactions per input token, the per-edge
    // traffic, the pipeline-fill latency and the bottleneck edge.
    // Installing the prediction on the deployment carries it into the
    // stats, so predicted and measured paces print side by side.
    let prediction = design.performance_prediction()?;
    println!("== Static performance prediction ==");
    println!("{prediction}");
    derived.set_prediction(prediction.clone());
    // Tracing records every reaction, blocking episode and token hand-off
    // into per-thread bounded buffers (zero cost when off), merged into a
    // timeline at join.
    derived.set_tracing(true);
    derived.feed("p0", stream.iter().copied());
    let derived_outcome = derived.run()?;
    assert_eq!(derived_outcome.flow("p4"), outcome.flow("p4"));
    assert!(derived_outcome.check_conformance()?.is_isochronous());
    println!("{}", derived_outcome.stats());

    // The merged trace summarizes busy/blocked time, per-edge occupancy
    // high-water marks against the derived bounds, and ranks bottlenecks;
    // the drift report diffs the measured run against the prediction edge
    // by edge; and the full timeline exports as Chrome trace-event JSON —
    // load trace.json in Perfetto (https://ui.perfetto.dev) or
    // chrome://tracing to see every reaction and blocking episode.
    let trace = derived_outcome.trace().expect("tracing was enabled");
    println!("== Trace ==");
    println!("{}", trace.summary());
    println!("{}", trace.drift_report(&prediction, stream.len() as u64));
    std::fs::write("trace.json", trace.to_chrome_json())?;
    println!("wrote trace.json ({} events)", trace.summary().events);
    Ok(())
}
