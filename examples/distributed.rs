//! Experiment E14 — one verified pipeline, two OS processes.
//!
//! ```text
//! cargo run --example distributed
//! ```
//!
//! The four-stage buffer pipeline (E13's workload) is partitioned as
//! `[stage0, stage1 | stage2, stage3]`: the parent plans the split, spawns
//! one child process per partition (re-executing itself), and each child
//! runs its half as an ordinary GALS deployment whose cut edge `p2` rides
//! a Unix domain socket speaking the gals-net wire protocol.  The link's
//! flow-control window is exactly the capacity bound the clock calculus
//! derived for the edge — the paper's FIFO-sizing result applied across a
//! process boundary.
//!
//! The parent then merges the partitions' observed flows (cross-checking
//! both sides of the cut signal), replays the synchronous reference of the
//! *whole* design, and checks end-to-end isochrony conformance — Theorem 1
//! observed over a real inter-process medium — and finally cross-checks
//! the merged flows against an in-process run of the same design.

use std::collections::BTreeMap;
use std::path::PathBuf;

use polychrony::gals_net::runner::run_partition;
use polychrony::gals_net::{merged_conformance, plan, MergedStats, PartitionReport, UdsLinks};
use polychrony::isochron::library;
use polychrony::moc::Value;
use polychrony::signal_lang::Name;

const STAGES: usize = 4;
const ASSIGNMENT: [usize; STAGES] = [0, 0, 1, 1];
const STREAM: [bool; 8] = [true, false, true, true, false, false, true, false];

fn feeds() -> BTreeMap<Name, Vec<Value>> {
    let mut feeds = BTreeMap::new();
    feeds.insert(
        Name::from("p0"),
        STREAM.iter().map(|&b| Value::Bool(b)).collect(),
    );
    feeds
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The child role: this same binary, re-executed per partition.
    if let Ok(process) = std::env::var("GALS_NET_PROC") {
        return child(process.parse()?);
    }
    parent()
}

fn child(process: usize) -> Result<(), Box<dyn std::error::Error>> {
    let dir = PathBuf::from(std::env::var("GALS_NET_DIR")?);
    let design = library::buffer_pipeline_design(STAGES)?;
    let plan = plan(&design, &ASSIGNMENT)?;
    let links = UdsLinks::new(&dir);
    let report = run_partition(&design, &plan, process, &links, &feeds())?;
    report.write(&dir.join(format!("partition-{process}.report")))?;
    Ok(())
}

fn parent() -> Result<(), Box<dyn std::error::Error>> {
    let design = library::buffer_pipeline_design(STAGES)?;
    assert!(design.is_weakly_hierarchic(), "{}", design.verdict());
    let plan = plan(&design, &ASSIGNMENT)?;

    println!("== Partition plan ({} processes) ==", plan.processes());
    let analysis = design.capacity_analysis()?;
    for cut in plan.cuts() {
        let derived = analysis
            .bound_for(&cut.signal)
            .expect("every cut edge carries a derived bound");
        assert_eq!(
            cut.window, derived.bound,
            "the link window must be the derived capacity bound"
        );
        println!(
            "cut {}: process {} -> process {}, window {} (= derived bound; {})",
            cut.signal, cut.producer, cut.consumer, cut.window, cut.provenance
        );
    }

    let dir = std::env::temp_dir().join(format!("gals-distributed-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let exe = std::env::current_exe()?;
    println!("\n== Launching {} partition processes ==", plan.processes());
    let mut children = Vec::new();
    for process in 0..plan.processes() {
        children.push(
            std::process::Command::new(&exe)
                .env("GALS_NET_PROC", process.to_string())
                .env("GALS_NET_DIR", &dir)
                .spawn()?,
        );
    }
    for (process, mut child) in children.into_iter().enumerate() {
        let status = child.wait()?;
        assert!(status.success(), "partition {process} failed: {status}");
        println!("partition {process}: exited cleanly");
    }

    let reports: Result<Vec<PartitionReport>, _> = (0..plan.processes())
        .map(|p| PartitionReport::read(&dir.join(format!("partition-{p}.report"))))
        .collect();
    let merged = MergedStats::merge(reports?)?;
    println!("\n== Merged statistics ==\n{merged}");

    // End-to-end conformance: the merged cross-process flows must equal
    // the synchronous reference replay of the whole design (Theorem 1).
    let report = merged_conformance(&design, &feeds(), &merged.flows);
    assert!(report.is_isochronous(), "{report}");
    println!("\n== Conformance ==\nisochronous: the merged flows equal the synchronous reference");

    // And they must match what a single-process derived deployment of the
    // very same design observes.
    let mut deployment = design.deploy_derived()?;
    for (signal, values) in feeds() {
        deployment.feed(signal, values);
    }
    let outcome = deployment.run()?;
    for (signal, values) in outcome.flows() {
        assert_eq!(
            merged.flows.get(signal),
            Some(values),
            "cross-process flow of {signal} diverged from the in-process run"
        );
    }
    let last = Name::from(format!("p{STAGES}"));
    println!(
        "single-process and two-process runs observed identical flows \
         ({} tokens on {last})",
        merged.flows.get(&last).map_or(0, Vec::len)
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
