//! Experiments E1–E3 — the motivating example of Section 1: `filter` is
//! endochronous, `filter | merge` is not, yet their asynchronous composition
//! is isochronous.
//!
//! ```text
//! cargo run --example filter_merge
//! ```

use polychrony::isochron::library;
use polychrony::moc::Name;
use polychrony::signal_lang::stdlib;
use polychrony::sim::AsyncNetwork;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // E1/E2: verdicts.
    let filter = polychrony::clocks::ClockAnalysis::analyze(&stdlib::filter().normalize()?);
    println!("filter:        {}", filter.summary());
    let design = library::filter_merge_design()?;
    println!("filter|merge:\n{}", design.verdict());

    // E3: the asynchronous composition produces the paper's flow of d.
    let filter_kernel = stdlib::filter().normalize()?;
    let merge_kernel = stdlib::merge()
        .instantiate("m", &[("c", "c"), ("y", "x"), ("z", "z"), ("d", "d")])
        .normalize()?;
    for seed in [1u64, 7, 42] {
        let mut net = AsyncNetwork::new();
        net.add_component("filter", &filter_kernel, Vec::<Name>::new());
        net.add_component("merge", &merge_kernel, Vec::<Name>::new());
        net.feed_paced("y", [true, false, false, true]);
        net.feed_paced("c", [false, true, true, false]);
        net.feed("z", [true, false]);
        net.run_random(128, seed);
        println!("seed {seed:>3}: d = {:?}", net.flow("d"));
    }
    println!("(the paper's expected flow of d is [true, true, true, false])");
    Ok(())
}
