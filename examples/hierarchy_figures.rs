//! Regenerates the clock-hierarchy figures of the paper.
//!
//! Section 3 draws the buffer's three clock classes as a tree, Section 4
//! draws the single-root hierarchies of `filter` and the buffer, the
//! two-root forest of `producer | consumer` (Section 5.1) and the four-tree
//! forest of the LTTA (Section 4.2).  This example prints each hierarchy in
//! the indented text form and as Graphviz DOT (pipe it into `dot -Tpng` to
//! get the actual figures).
//!
//! Run with `cargo run --example hierarchy_figures`.

use polychrony::clocks::{dot, ClockAnalysis};
use polychrony::signal_lang::stdlib;
use polychrony::signal_lang::ProcessDef;

fn show(def: &ProcessDef) {
    let kernel = def.normalize().expect("paper processes normalize");
    let analysis = ClockAnalysis::analyze(&kernel);
    println!("== {} ==", def.name);
    println!("{}", analysis.summary());
    println!();
    println!("{}", analysis.hierarchy().render());
    println!("{}", dot::hierarchy_dot(analysis.hierarchy(), &def.name));
    println!(
        "{}",
        dot::scheduling_dot(analysis.scheduling_graph(), &def.name)
    );
}

fn main() {
    // Section 1 / Section 4: the endochronous components.
    show(&stdlib::filter());
    show(&stdlib::buffer());
    // Section 5.1: two roots — weakly hierarchic but not endochronous.
    show(&stdlib::producer_consumer());
    // Section 4.2: the four-device LTTA.
    show(&stdlib::ltta());
}
