//! Experiment E7 — the loosely time-triggered architecture of Section 4.2:
//! writer, double-buffered bus and reader, each on its own clock.
//!
//! ```text
//! cargo run --example ltta
//! ```

use polychrony::isochron::library;
use polychrony::moc::Name;
use polychrony::sim::AsyncNetwork;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = library::ltta_design()?;
    println!("== Static criterion ==\n{}", design.verdict());
    println!("== Hierarchy (four trees, one per device clock) ==");
    println!("{}", design.analysis().hierarchy().render());

    // Asynchronous execution: each device at its own pace, connected by the
    // bus buffers.
    let mut net = AsyncNetwork::new();
    for component in design.components() {
        // The bus buffers are paced by their internal alternating state.
        let activation: Vec<Name> = component
            .kernel()
            .locals()
            .filter(|n| n.as_str().ends_with("_t"))
            .cloned()
            .collect();
        net.add_component(component.name(), component.kernel(), activation);
    }
    // The writer is activated (cw true) at every attempt and fed a counter;
    // the reader polls (cr true) at every attempt.
    let values: Vec<i64> = (1..=8).collect();
    net.feed("xw", values.clone());
    net.feed_paced("cw", vec![true; 64]);
    net.feed_paced("cr", vec![true; 64]);
    net.run_round_robin(512);
    println!("written xw = {values:?}");
    println!("read    xr = {:?}", net.flow("xr"));
    println!(
        "reactions = {}, blocked attempts = {}",
        net.reactions(),
        net.blocked_attempts()
    );
    Ok(())
}
