//! Experiments E8/E9 — the producer/consumer pair of Section 5: separate
//! compilation, controller synthesis and concurrent execution.
//!
//! ```text
//! cargo run --example producer_consumer
//! ```

use polychrony::codegen::controller::{emit_controlled_main_c, ControlledPair, SharedLink};
use polychrony::codegen::{concurrent, seq};
use polychrony::isochron::library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = library::producer_consumer_design()?;
    println!(
        "== Static criterion (Definition 12 / Theorem 1) ==\n{}",
        design.verdict()
    );

    let producer = seq::generate(design.components()[0].analysis());
    let consumer = seq::generate(design.components()[1].analysis());

    // The synthesized controller (Section 5.2).
    println!(
        "== Synthesized controller ==\n{}",
        emit_controlled_main_c(&SharedLink::producer_consumer(), "producer", "consumer")
    );

    // Sequential controlled execution.
    let a = [true, false, true, false, true, true, false];
    let b = [false, true, false, true, false, false, true];
    let mut pair = ControlledPair::new(
        producer.clone(),
        consumer.clone(),
        SharedLink::producer_consumer(),
    );
    pair.feed_left(a);
    pair.feed_right(b);
    pair.run(1000);
    println!(
        "sequential: u = {:?}, x = {:?}, v = {:?} ({} rendez-vous)",
        pair.left_output("u"),
        pair.left_output("x"),
        pair.right_output("v"),
        pair.rendezvous()
    );

    // Concurrent execution: one thread per component (Section 5).
    let outcome = concurrent::run_producer_consumer(producer, consumer, &a, &b);
    println!(
        "concurrent: u = {:?}, shared = {:?}, v = {:?}",
        outcome.u, outcome.shared, outcome.v
    );
    assert_eq!(outcome.v, pair.right_output("v"));
    println!("concurrent and sequential flows agree (weak isochrony).");
    Ok(())
}
