//! Quickstart: analyze, compile and execute the one-place buffer of the
//! paper.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use polychrony::codegen::SequentialRuntime;
use polychrony::isochron::library;
use polychrony::signal_lang::printer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A Signal process from the library (Section 3 of the paper).
    let buffer = library::buffer();
    println!("== Signal source ==\n{}", printer::render(&buffer));

    // 2. The clock analysis: hierarchy, verdicts.
    let design = library::buffer_design()?;
    let analysis = design.analysis();
    println!("== Clock hierarchy ==\n{}", analysis.hierarchy().render());
    println!("== Verdict ==\n{}", design.verdict());

    // 3. The generated sequential code (the paper's buffer_iterate).
    let component = &design.components()[0];
    println!("== Generated C ==\n{}", component.emit_c());

    // 4. Execute the generated step program on a small input flow.
    let mut runtime = SequentialRuntime::new(component.step_program());
    runtime.feed("y", [true, false, true, true]);
    let steps = runtime.run(64);
    println!(
        "executed {steps} steps; buffered output x = {:?}",
        runtime.output("x")
    );
    Ok(())
}
