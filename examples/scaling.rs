//! How the static weak-hierarchy criterion scales with design size.
//!
//! The paper's motivation (Section 1 and Section 7) is that checking weak
//! endochrony by state-space exploration is exponential in the number of
//! composed components, while the static criterion — per-component
//! endochrony plus well-clockedness and acyclicity of the composition — is
//! cheap.  This example prints both costs side by side on growing chains of
//! producer/consumer pairs; benchmark E10 measures the same series with
//! Criterion.
//!
//! Run with `cargo run --release --example scaling`.

use std::time::Instant;

use polychrony::analysis::WeakEndochronyReport;
use polychrony::clocks::ClockAnalysis;
use polychrony::isochron::design::{chain_as_single_process, chain_of_pairs};
use polychrony::isochron::Design;

fn main() {
    println!("static weak-hierarchy criterion (Definition 12)");
    println!(
        "{:>6} {:>10} {:>14} {:>8}",
        "pairs", "signals", "check time", "roots"
    );
    for n in [1usize, 2, 4, 8, 16, 32] {
        let components = chain_of_pairs(n);
        let start = Instant::now();
        let design = Design::compose(format!("chain{n}"), components).expect("chain builds");
        let weakly_hierarchic = design.is_weakly_hierarchic();
        let elapsed = start.elapsed();
        assert!(weakly_hierarchic);
        let signals = design.composition().signals().count();
        println!(
            "{n:>6} {signals:>10} {elapsed:>14.2?} {:>8}",
            design.verdict().roots
        );
    }

    println!();
    println!("single-process clock analysis of the same chains");
    println!("{:>6} {:>10} {:>14}", "pairs", "signals", "analysis");
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let kernel = chain_as_single_process(n)
            .expect("chain builds")
            .normalize()
            .expect("normalizes");
        let start = Instant::now();
        let analysis = ClockAnalysis::analyze(&kernel);
        let elapsed = start.elapsed();
        assert!(analysis.is_compilable());
        println!("{n:>6} {:>10} {elapsed:>14.2?}", kernel.signals().count());
    }

    println!();
    println!("explicit weak-endochrony exploration (the costly alternative)");
    println!(
        "{:>6} {:>10} {:>14} {:>10}",
        "pairs", "states", "check time", "verdict"
    );
    for n in [1usize, 2, 3] {
        let kernel = chain_as_single_process(n)
            .expect("chain builds")
            .normalize()
            .expect("normalizes");
        let start = Instant::now();
        let report = WeakEndochronyReport::check(&kernel, 500_000);
        let elapsed = start.elapsed();
        println!(
            "{n:>6} {:>10} {elapsed:>14.2?} {:>10}",
            report.state_count(),
            report.is_weakly_endochronous()
        );
    }
}
