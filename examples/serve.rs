//! A serving process hosting many verified deployments on one pool.
//!
//! Everything else in `examples/` runs *one* deployment to completion;
//! this example inverts the shape.  A `gals_serve::Server` starts a
//! fixed worker pool once, then 64 tenants — each a verified 3-stage
//! buffer pipeline — are admitted, fed distinct input streams
//! concurrently, and drained to 64 fully isolated outcomes: per-tenant
//! flows, per-tenant stats, per-tenant conformance against the
//! synchronous reference.  Admission is priced by the clock calculus
//! (derived channel slots) and the static performance predictor
//! (reactions per input), so the demo closes with the three refusal
//! paths: an over-budget design, an unverified design, and a duplicate
//! tenant id.
//!
//! Run with `cargo run --release --example serve`.

use std::time::Duration;

use polychrony::gals_serve::{AdmitError, Budget, Server, ServerOptions};
use polychrony::isochron::{library, Design};
use polychrony::moc::Value;
use polychrony::signal_lang::{stdlib, Expr, ProcessBuilder};

const TENANTS: usize = 64;
const STAGES: usize = 3;
const TOKENS: i64 = 32;
const CHUNK: i64 = 8;

fn main() {
    // One pool for everything: 4 workers, 8 reactions per dispatch,
    // workers pinned to cores.  The budget leaves exactly enough
    // components for the 64 tenants, so the 65th admission must fail.
    let mut options = ServerOptions::new(4, 8);
    options.budget = Budget::unlimited().with_components(TENANTS * STAGES);
    options.pin_workers = true;
    let server = Server::start(options).expect("the pool starts");
    let design = library::buffer_pipeline_design(STAGES).expect("the pipeline builds");

    println!("== admission ==");
    let mut handles = Vec::with_capacity(TENANTS);
    for tenant in 0..TENANTS {
        let handle = server
            .admit(format!("tenant-{tenant:02}"), &design)
            .expect("within budget");
        if tenant == 0 {
            println!(
                "each tenant is priced at {} (bottleneck boost on [{}])",
                handle.footprint(),
                handle.boosted().join(", ")
            );
        }
        handles.push(handle);
    }
    println!("{}", server.load());

    // The 65th tenant does not fit: 3 more components over a 192 cap.
    match server.admit("one-too-many", &design) {
        Err(AdmitError::OverBudget {
            resource,
            requested,
            in_use,
            limit,
            ..
        }) => println!(
            "refused one-too-many: {requested} {resource} requested, {in_use}/{limit} in use"
        ),
        other => panic!("expected an over-budget refusal, got {other:?}"),
    }

    // An unverified design is refused before any pricing: a lone
    // `default` over unrelated inputs fails the weak-hierarchy
    // criterion, so none of its capacity bounds can be trusted.
    let loose = ProcessBuilder::new("loose")
        .define("d", Expr::var("y").default(Expr::var("z")))
        .build()
        .expect("the process builds");
    let unverified = Design::compose("bad", [loose, stdlib::filter()]).expect("composes");
    match server.admit("unverifiable", &unverified) {
        Err(AdmitError::NotVerified(name)) => println!("refused unverifiable: design {name}"),
        other => panic!("expected a not-verified refusal, got {other:?}"),
    }

    // Tenant ids key the accounting ledger, so reuse is refused.
    match server.admit("tenant-00", &design) {
        Err(AdmitError::DuplicateId(id)) => println!("refused duplicate id {id:?}"),
        other => panic!("expected a duplicate-id refusal, got {other:?}"),
    }

    println!();
    println!("== streaming {TENANTS} tenants concurrently ==");
    // Interleave the feeds chunk by chunk across every tenant, so all 64
    // deployments are genuinely in flight at once; each tenant gets a
    // distinct stream (offset by tenant index) to make cross-talk
    // detectable.
    let mut polled = vec![0usize; TENANTS];
    for chunk in 0..(TOKENS / CHUNK) {
        for (tenant, handle) in handles.iter_mut().enumerate() {
            let base = (tenant as i64) * 1_000 + chunk * CHUNK;
            handle
                .feed("p0", (base..base + CHUNK).map(Value::Int))
                .expect("p0 is an environment input");
        }
        for (tenant, handle) in handles.iter_mut().enumerate() {
            for flow in handle.poll_outputs().values() {
                polled[tenant] += flow.len();
            }
        }
    }
    println!(
        "streamed {} tokens, polled {} back mid-flight",
        TENANTS as i64 * TOKENS,
        polled.iter().sum::<usize>()
    );

    println!();
    println!("== draining to {TENANTS} isolated outcomes ==");
    let output = format!("p{STAGES}");
    let mut total_reactions = 0u64;
    for (tenant, handle) in handles.into_iter().enumerate() {
        let outcome = handle
            .finish(Duration::from_secs(30))
            .expect("every tenant drains");
        // Isolation: this tenant's flow is exactly its own stream — the
        // one-place buffers forward values unchanged, so any cross-tenant
        // leak would surface here.
        let expected: Vec<Value> = (0..TOKENS)
            .map(|i| Value::Int((tenant as i64) * 1_000 + i))
            .collect();
        assert_eq!(outcome.flow(&output), expected, "tenant {tenant} flow");
        // And its conformance replay sees only its own feeds.
        let report = outcome.check_conformance().expect("reference registered");
        assert!(report.is_isochronous(), "tenant {tenant}: {report}");
        total_reactions += outcome.stats().total_reactions();
        if tenant < 2 || tenant == TENANTS - 1 {
            let stats = outcome.stats();
            println!(
                "tenant-{tenant:02}: {} reactions in {:.2?}, conformant",
                stats.total_reactions(),
                stats.elapsed
            );
        }
    }
    println!("all {TENANTS} tenants conformant, {total_reactions} reactions total");
    assert_eq!(server.load().deployments, 0, "every reservation released");

    println!();
    println!("== pool after the fact ==");
    for worker in server.worker_stats() {
        println!("  {worker}");
    }
    println!("{}", server.load());
}
