//! Offline stand-in for `criterion`.
//!
//! Implements the subset the e1–e12 benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — as a small wall-clock harness: each
//! benchmark is warmed up, then timed for `sample_size` samples (bounded
//! by `measurement_time`), and the mean/min/max per-iteration time is
//! printed.  No statistics beyond that, no HTML reports.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level harness state and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1500),
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Sets how long each benchmark is run before timing starts.
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the time budget for collecting samples.
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// In real criterion this reads CLI flags; the shim keeps the
    /// programmatic configuration and merely tolerates the call.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_one(&config, None, &id.into(), f);
        self
    }
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        if self.function.is_empty() {
            self.parameter.clone()
        } else if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    fn effective_config(&self) -> Criterion {
        let mut config = self.criterion.clone();
        if let Some(n) = self.sample_size {
            config.sample_size = n;
        }
        config
    }

    /// Times `f` under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.effective_config(), Some(&self.name), &id.into(), f);
        self
    }

    /// Times `f` with a borrowed input under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.effective_config(),
            Some(&self.name),
            &id.render(),
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility; drop would do).
    pub fn finish(self) {}
}

/// Hands the measured routine to the harness.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(config: &Criterion, group: Option<&str>, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let full_name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };

    // Warm-up: run single iterations until the warm-up budget is spent,
    // which also calibrates the per-iteration cost.
    let warm_up_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut warm_elapsed = Duration::ZERO;
    while warm_up_start.elapsed() < config.warm_up_time && warm_iters < 1_000_000 {
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        warm_elapsed += bencher.elapsed;
        warm_iters += 1;
    }
    let per_iter = if warm_iters > 0 {
        warm_elapsed / warm_iters.max(1) as u32
    } else {
        Duration::from_millis(1)
    };

    // Choose iterations-per-sample so all samples fit in measurement_time.
    let budget_per_sample = config.measurement_time / config.sample_size as u32;
    let iterations = if per_iter.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut samples = Vec::with_capacity(config.sample_size);
    let measure_start = Instant::now();
    for _ in 0..config.sample_size {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_nanos() as f64 / iterations as f64);
        if measure_start.elapsed() > config.measurement_time * 2 {
            break;
        }
    }

    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{full_name:<60} time: [{} {} {}]  ({} samples x {} iters)",
        format_ns(min),
        format_ns(mean),
        format_ns(max),
        samples.len(),
        iterations,
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: either `criterion_group!(name, target, ..)`
/// or the braced form with an explicit `config = ..` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3)
    }

    #[test]
    fn bench_function_runs_the_routine() {
        let mut criterion = quick();
        let mut group = criterion.benchmark_group("shim");
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut criterion = quick();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
