//! Offline stand-in for `crossbeam`, backed by `std::sync::mpsc`.
//!
//! Only the surface this workspace uses is provided: `channel::bounded`
//! with blocking `send`/`recv` — the one-place rendez-vous of the
//! concurrent code-generation scheme.

/// Multi-producer single-consumer channels (the subset of
/// `crossbeam-channel` this workspace relies on).
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError, TrySendError};

    /// The sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// The receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the value is accepted, or errors if all receivers
        /// are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }

        /// Non-blocking send: errors with `TrySendError::Full` instead of
        /// waiting when the buffer has no free slot.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives, or errors once all senders are
        /// gone and the buffer is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates a channel with an internal buffer of `cap` messages; `send`
    /// blocks while the buffer is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    /// Creates a channel with an unbounded buffer; `send` never blocks.
    pub fn unbounded<T>() -> (UnboundedSender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (UnboundedSender(tx), Receiver(rx))
    }

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct UnboundedSender<T>(mpsc::Sender<T>);

    impl<T> Clone for UnboundedSender<T> {
        fn clone(&self) -> Self {
            UnboundedSender(self.0.clone())
        }
    }

    impl<T> UnboundedSender<T> {
        /// Sends without blocking, or errors if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_channel_round_trips() {
        let (tx, rx) = channel::bounded::<u32>(1);
        let h = std::thread::spawn(move || {
            for i in 0..4 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        h.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_errors_after_sender_drops() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
