//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface this workspace uses is provided: [`Mutex`] whose
//! `lock` returns the guard directly (no `Result`), recovering from
//! poisoning like `parking_lot` (which has no poisoning at all).

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion primitive with `parking_lot`'s panic-free `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    ///
    /// Unlike `std`, a panic in another thread while holding the lock does
    /// not poison it — the guard is returned regardless, matching
    /// `parking_lot` semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn survives_poisoning() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
