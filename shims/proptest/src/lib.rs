//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), integer-range and
//! boolean strategies, `prop::collection::vec`, and the `prop_assert*`
//! macros.  Generation is deterministic (a fixed-seed SplitMix64 stream per
//! test), so failures are reproducible; there is no shrinking — the first
//! failing case is reported as-is by the panic message.

/// Deterministic test-case source.
pub mod test_runner {
    /// Runner configuration: the number of generated cases per test.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// How many cases each property is instantiated with.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        /// 256 cases, like the real proptest — and, also like the real
        /// proptest, the `PROPTEST_CASES` environment variable overrides
        /// the default so CI lanes can scale fuzz depth without code
        /// changes.
        fn default() -> Self {
            Config {
                cases: Config::cases_from_env(256),
            }
        }
    }

    impl Config {
        /// The case count from `PROPTEST_CASES`, or `default` when the
        /// variable is unset or unparsable.
        pub fn cases_from_env(default: u32) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
    }

    /// SplitMix64 stream used to instantiate strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A deterministic generator: every run of a test sees the same
        /// case sequence.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x005e_ed0f_0a11_ca5e ^ 0xa076_1d64_78bd_642f,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let draw = ((rng.next_u64() as u128 * width) >> 64) as i128;
                    (self.start as i128 + draw) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The `any::<T>()` strategy: uniform over the whole type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    /// Types with a canonical "uniform over everything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_arbitrary_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        };
    }

    impl_arbitrary_tuple!(A);
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing vectors of values drawn from an element
    /// strategy, with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.len.start < self.len.end {
                Strategy::generate(&self.len, rng)
            } else {
                self.len.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len_range)`: vectors whose length lies in the range.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property; failure panics with the
/// (optional) formatted message, failing the generated test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that instantiates the strategies `config.cases`
/// times and runs the body on each case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let run = || $body;
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {}/{} failed in `{}`",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -5i64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        /// Vec strategies honour their length range.
        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(any::<bool>(), 1..20)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.len() < 20, "len {}", v.len());
        }

        /// Tuple `any` composes.
        #[test]
        fn tuples_compose(t in prop::collection::vec(any::<(bool, bool, bool)>(), 1..4)) {
            prop_assert!(!t.is_empty());
        }
    }
}
