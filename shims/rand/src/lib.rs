//! Offline stand-in for `rand`, backed by a SplitMix64 generator.
//!
//! Only the surface this workspace uses is provided: `rngs::StdRng`,
//! seeded with [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] /
//! [`Rng::gen_bool`] over integer ranges.  SplitMix64 passes BigCrush on
//! its 64-bit output and is more than adequate for simulation
//! interleavings and test-case generation.

use std::ops::Range;

/// A source of randomness: the minimal core of `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// An RNG seedable from a `u64`, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Draws a value in `[low, high)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let width = (high as i128 - low as i128) as u128;
                // Multiply-shift keeps the distribution uniform enough for
                // simulation purposes without a rejection loop.
                let draw = ((rng.next_u64() as u128 * width) >> 64) as i128;
                (low as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_generators_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(0usize..5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..500 {
            let v = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&v));
        }
    }
}
