//! Facade crate for the reproduction of *Compositional design of isochronous
//! systems* (Talpin, Ouy, Besnard, Le Guernic — DATE 2008).
//!
//! Re-exports every workspace crate under a single roof so that examples and
//! integration tests can use one dependency.
//!
//! The README below doubles as the crate-level tour — and, via `cargo test
//! --doc`, as an executable one: its code blocks compile and run against the
//! re-exports above.
#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]

pub use analysis;
pub use clocks;
pub use codegen;
pub use gals_net;
pub use gals_rt;
pub use gals_serve;
pub use isochron;
pub use moc;
pub use signal_lang;
pub use sim;
