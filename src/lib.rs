//! Facade crate for the reproduction of *Compositional design of isochronous
//! systems* (Talpin, Ouy, Besnard, Le Guernic — DATE 2008).
//!
//! Re-exports every workspace crate under a single roof so that examples and
//! integration tests can use one dependency.

#![forbid(unsafe_code)]

pub use analysis;
pub use clocks;
pub use codegen;
pub use gals_net;
pub use gals_rt;
pub use isochron;
pub use moc;
pub use signal_lang;
pub use sim;
