//! The capacity-derivation and cycle-analysis subsystem end to end.
//!
//! The clock calculus that proves a design isochronous also bounds its
//! FIFOs: `Design::capacity_analysis` derives a per-edge capacity from the
//! rate relation between the producer's and consumer's clocks, and
//! `ChannelSizing::Derived` turns the bounds into the deployment's actual
//! channel capacities.  This suite checks the two directions of that
//! claim:
//!
//! * **sufficiency** — a replay with derived capacities never hits
//!   `StopReason::Deadlocked` and conforms to the synchronous reference
//!   (property-tested over generated pipelines and streams);
//! * **tightness-ish** — one below the derived bound is statically
//!   refused: capacity `bound - 1` on a sampled (bound 1) edge is the
//!   rejected zero capacity, and undercutting a feedback edge's derived
//!   bound is `InsufficientFeedbackCapacity`;
//!
//! plus the typed-error boundary: `UnboundedEdge` for edges the calculus
//! cannot bound, `NotVerified` for unverified designs, and the
//! refuse-or-prove cycle analysis (a derivably bounded feedback loop runs
//! to completion without `set_allow_cycles`; an underivable one is
//! refused naming the edge).

use polychrony::clocks::RateRelation;
use polychrony::gals_rt::{
    Backend, CapacityAnalysis, CapacitySource, ChannelSizing, DeployError, Deployment,
    DerivedCapacity, ExecutionMode, StepFault, StepMachine, StopReason,
};
use polychrony::isochron::{design::chain_of_pairs, library, Design};
use polychrony::moc::Value;
use polychrony::signal_lang::Name;
use proptest::prelude::*;

const MODES: [ExecutionMode; 2] = [
    ExecutionMode::ThreadPerComponent,
    ExecutionMode::Pool {
        workers: 2,
        quantum: 4,
    },
];

/// The closed half of a feedback loop: consumes one `seed` (environment)
/// and one `q` (feedback) token per reaction and emits the seed on `p`.
struct Ping {
    seeds: Vec<Value>,
    qs: Vec<Value>,
    produced: Vec<Value>,
}

impl StepMachine for Ping {
    fn machine_name(&self) -> &str {
        "ping"
    }
    fn input_signals(&self) -> Vec<Name> {
        vec![Name::from("seed"), Name::from("q")]
    }
    fn output_signals(&self) -> Vec<Name> {
        vec![Name::from("p")]
    }
    fn feed_value(&mut self, signal: &str, value: Value) {
        if signal == "seed" {
            self.seeds.push(value);
        } else {
            self.qs.push(value);
        }
    }
    fn try_step(&mut self) -> Result<(), StepFault> {
        if self.qs.is_empty() {
            return Err(StepFault::NeedInput(Name::from("q")));
        }
        if self.seeds.is_empty() {
            return Err(StepFault::NeedInput(Name::from("seed")));
        }
        self.qs.remove(0);
        let seed = self.seeds.remove(0);
        self.produced.push(seed);
        Ok(())
    }
    fn produced(&self, _signal: &str) -> &[Value] {
        &self.produced
    }
}

/// The primed half of the loop: emits one initial `q` token before ever
/// consuming — the channel-level image of an initialized delay register
/// breaking the instantaneous cycle — then relays `p` back to `q`.
struct Pong {
    primed: bool,
    queue: Vec<Value>,
    produced: Vec<Value>,
}

impl StepMachine for Pong {
    fn machine_name(&self) -> &str {
        "pong"
    }
    fn input_signals(&self) -> Vec<Name> {
        vec![Name::from("p")]
    }
    fn output_signals(&self) -> Vec<Name> {
        vec![Name::from("q")]
    }
    fn feed_value(&mut self, _signal: &str, value: Value) {
        self.queue.push(value);
    }
    fn try_step(&mut self) -> Result<(), StepFault> {
        if self.primed {
            self.primed = false;
            self.produced.push(Value::Int(0));
            return Ok(());
        }
        if self.queue.is_empty() {
            return Err(StepFault::NeedInput(Name::from("p")));
        }
        let value = self.queue.remove(0);
        self.produced.push(value);
        Ok(())
    }
    fn produced(&self, _signal: &str) -> &[Value] {
        &self.produced
    }
}

/// A primed feedback loop: ping -> p -> pong -> q -> ping.
fn ping_pong(seeds: usize) -> Deployment {
    let mut deployment = Deployment::new();
    deployment.add_machine(Box::new(Ping {
        seeds: Vec::new(),
        qs: Vec::new(),
        produced: Vec::new(),
    }));
    deployment.add_machine(Box::new(Pong {
        primed: true,
        queue: Vec::new(),
        produced: Vec::new(),
    }));
    deployment.feed("seed", (1..=seeds as i64).map(Value::Int));
    deployment
}

/// Derived two-place bounds for the loop's edges, as the calculus would
/// produce for strictly alternating phases of a primed register.
fn alternating_bounds(signals: &[&str]) -> CapacityAnalysis {
    let mut analysis = CapacityAnalysis::new();
    for signal in signals {
        analysis.insert(
            *signal,
            DerivedCapacity {
                bound: 2,
                relation: RateRelation::Alternating {
                    state: Name::from("t"),
                },
                provenance: format!("alternating on t: one {signal} in flight plus the primer"),
            },
        );
    }
    analysis
}

#[test]
fn every_stdlib_edge_gets_a_finite_derived_bound() {
    for design in [
        library::producer_consumer_design().unwrap(),
        library::buffer_pipeline_design(4).unwrap(),
        library::ltta_design().unwrap(),
        Design::compose("chain2", chain_of_pairs(2)).unwrap(),
    ] {
        let analysis = design.capacity_analysis().expect("verified design");
        assert!(analysis.is_fully_bounded(), "{}: {analysis}", design.name());
        let deployment = design.deploy_derived().expect("verified design");
        assert_eq!(deployment.sizing(), ChannelSizing::Derived);
        let topology = deployment.topology().expect("every edge bounded");
        assert!(!topology.channels.is_empty(), "{}", design.name());
        for spec in &topology.channels {
            assert_eq!(spec.source, CapacitySource::Derived, "{}", spec.signal);
            assert!(spec.capacity >= 1, "{}", spec.signal);
            let why = spec.derivation.as_deref().expect("derivation recorded");
            assert!(
                why.contains("producer at"),
                "{}: derivation {why}",
                spec.signal
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(ProptestConfig::cases_from_env(16)))]

    /// Sufficiency: whatever the stream and pipeline depth, the derived
    /// capacities never deadlock and the deployment conforms — under both
    /// backends and both execution modes.
    #[test]
    fn derived_capacities_are_sufficient(
        n in 1usize..5,
        stream in prop::collection::vec(any::<bool>(), 0..24),
    ) {
        let design = library::buffer_pipeline_design(n).expect("builds");
        // Derive once per case: the clock inference + BDD work is a
        // per-design cost, not a per-combination one.
        let analysis = design.capacity_analysis().expect("verified design");
        let stream: Vec<Value> = stream.into_iter().map(Value::Bool).collect();
        for mode in MODES {
            for backend in [Backend::Mpsc, Backend::SpscRing] {
                let mut deployment = design.deploy().expect("verified design");
                deployment.set_capacity_analysis(&analysis);
                deployment.set_execution_mode(mode).expect("valid mode");
                deployment.set_backend(backend);
                deployment.feed("p0", stream.iter().copied());
                let outcome = deployment.run().expect("the deployment runs");
                for component in &outcome.stats().components {
                    prop_assert_ne!(
                        &component.stop,
                        &StopReason::Deadlocked,
                        "derived capacities deadlocked ({mode}, {backend})"
                    );
                }
                prop_assert_eq!(outcome.flow(&format!("p{n}")), stream.as_slice());
                let report = outcome.check_conformance().expect("reference registered");
                prop_assert!(report.is_isochronous(), "{}", report);
            }
        }
    }
}

#[test]
fn bound_minus_one_on_a_sampled_edge_is_statically_blocked() {
    // Every edge of the buffer pipeline derives the paper's one-place
    // bound; one less is the zero capacity, which is refused up front (a
    // rendezvous would deadlock the worker loop).
    let design = library::buffer_pipeline_design(2).unwrap();
    let analysis = design.capacity_analysis().unwrap();
    let bound = analysis
        .bound_for(&Name::from("p1"))
        .expect("bounded")
        .bound;
    assert_eq!(bound, 1);
    let mut deployment = design.deploy_derived().unwrap();
    assert_eq!(
        deployment
            .set_channel_capacity("p1", bound - 1)
            .unwrap_err(),
        DeployError::ZeroCapacity(Some(Name::from("p1")))
    );
}

#[test]
fn a_derivably_bounded_cycle_runs_to_completion() {
    // The feedback loop is primed and both edges carry their derived
    // two-place bound: the cycle is *proven* safe, so no
    // `set_allow_cycles` is needed and no run ends `Deadlocked` — in
    // either execution mode.
    for mode in MODES {
        let mut deployment = ping_pong(8);
        deployment.set_capacity_analysis(&alternating_bounds(&["p", "q"]));
        deployment.set_execution_mode(mode).expect("valid mode");
        let topology = deployment.topology().expect("bounded");
        assert!(topology.has_cycle());
        assert_eq!(
            topology.cycle_signals(),
            [Name::from("p"), Name::from("q")].into_iter().collect()
        );
        let outcome = deployment.run().expect("the proven cycle runs");
        for component in &outcome.stats().components {
            assert_ne!(component.stop, StopReason::Deadlocked, "{mode}");
        }
        // Every seed made it around the loop, after the priming token.
        let p: Vec<i64> = outcome
            .flow("p")
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(p, (1..=8).collect::<Vec<_>>(), "{mode}");
        let q = outcome.flow("q");
        assert_eq!(q.len(), 9, "{mode}");
        assert_eq!(q[0], Value::Int(0), "{mode}");
    }
}

#[test]
fn feedback_capacity_below_the_derived_bound_is_refused() {
    // Tightness of the cycle criterion: undercutting the derived bound on
    // a feedback edge is refused statically — even when cycles were
    // explicitly allowed, because here the calculus positively proves the
    // channel can fill and wedge the loop.
    for allow in [false, true] {
        let mut deployment = ping_pong(4);
        deployment.set_capacity_analysis(&alternating_bounds(&["p", "q"]));
        deployment.set_channel_capacity("q", 1).expect("nonzero");
        deployment.set_allow_cycles(allow);
        assert_eq!(
            deployment.run().unwrap_err(),
            DeployError::InsufficientFeedbackCapacity {
                signal: Name::from("q"),
                required: 2,
                actual: 1,
            }
        );
    }
}

#[test]
fn an_underivable_cycle_is_refused_naming_the_edge() {
    // Only p has a derived bound: the q edge resolves to nothing under
    // derived sizing and the topology itself is refused.
    let mut deployment = ping_pong(4);
    deployment.set_capacity_analysis(&alternating_bounds(&["p"]));
    assert_eq!(
        deployment.run().unwrap_err(),
        DeployError::UnboundedEdge(Name::from("q"))
    );

    // An explicit override sizes the q edge, but does not *prove* it: the
    // cycle still needs the explicit opt-in, and the refusal names the
    // unproven edge (a distinct error from UnboundedEdge — the remedy is
    // set_allow_cycles, not set_channel_capacity).
    let mut deployment = ping_pong(4);
    deployment.set_capacity_analysis(&alternating_bounds(&["p"]));
    deployment.set_channel_capacity("q", 4).expect("nonzero");
    let err = deployment.run().unwrap_err();
    assert_eq!(err, DeployError::UnprovenFeedbackEdge(Name::from("q")));
    assert!(err.to_string().contains("allow_cycles"), "{err}");

    // With the opt-in, the override-sized loop runs (dynamic detection
    // remains the safety net in pool mode).
    let mut deployment = ping_pong(4);
    deployment.set_capacity_analysis(&alternating_bounds(&["p"]));
    deployment.set_channel_capacity("q", 4).expect("nonzero");
    deployment.set_allow_cycles(true);
    let outcome = deployment.run().expect("allowed cycle runs");
    assert_eq!(outcome.flow("p").len(), 4);
}

/// A one-in/one-out relay, for acyclic hand-rolled topologies.
struct Relay {
    name: String,
    input: Name,
    output: Name,
    queue: Vec<Value>,
    produced: Vec<Value>,
}

impl Relay {
    fn boxed(name: &str, input: &str, output: &str) -> Box<Self> {
        Box::new(Relay {
            name: name.into(),
            input: Name::from(input),
            output: Name::from(output),
            queue: Vec::new(),
            produced: Vec::new(),
        })
    }
}

impl StepMachine for Relay {
    fn machine_name(&self) -> &str {
        &self.name
    }
    fn input_signals(&self) -> Vec<Name> {
        vec![self.input.clone()]
    }
    fn output_signals(&self) -> Vec<Name> {
        vec![self.output.clone()]
    }
    fn feed_value(&mut self, _signal: &str, value: Value) {
        self.queue.push(value);
    }
    fn try_step(&mut self) -> Result<(), StepFault> {
        if self.queue.is_empty() {
            return Err(StepFault::NeedInput(self.input.clone()));
        }
        let value = self.queue.remove(0);
        self.produced.push(value);
        Ok(())
    }
    fn produced(&self, _signal: &str) -> &[Value] {
        &self.produced
    }
}

#[test]
fn unbounded_edges_are_typed_errors_on_acyclic_topologies_too() {
    // Hand-rolled machines carry no clock information: under derived
    // sizing, an edge without an installed bound or an override is a
    // typed error naming the signal — at topology() and at run().
    let acyclic = || {
        let mut deployment = Deployment::new();
        deployment.add_machine(Relay::boxed("a", "s0", "s1"));
        deployment.add_machine(Relay::boxed("b", "s1", "s2"));
        deployment.feed("s0", (1..=3).map(Value::Int));
        deployment.set_sizing(ChannelSizing::Derived);
        deployment
    };
    assert_eq!(
        acyclic().topology().unwrap_err(),
        DeployError::UnboundedEdge(Name::from("s1"))
    );
    assert_eq!(
        acyclic().run().unwrap_err(),
        DeployError::UnboundedEdge(Name::from("s1"))
    );
    // An explicit override unblocks the edge.
    let mut deployment = acyclic();
    deployment.set_channel_capacity("s1", 2).expect("nonzero");
    let outcome = deployment.run().expect("runs");
    assert_eq!(outcome.flow("s2").len(), 3);
}

#[test]
fn unverified_designs_cannot_derive_bounds() {
    use polychrony::signal_lang::{stdlib, Expr, ProcessBuilder};
    let loose = ProcessBuilder::new("loose")
        .define("d", Expr::var("y").default(Expr::var("z")))
        .build()
        .unwrap();
    let design = Design::compose("bad", [loose, stdlib::filter()]).expect("builds");
    assert_eq!(
        design.capacity_analysis().unwrap_err(),
        DeployError::NotVerified("bad".into())
    );
}

#[test]
fn the_multirate_design_derives_a_kperiodic_bound_beyond_the_alternating_classes() {
    // The burst design is a partially-analyzed composition: its composite
    // hides the shared signal and both phase rings, so the global algebra
    // cannot relate the edge clocks at all — under PR 5's rate classes the
    // edge was `UnboundedEdge`.  The components' local k-periodic words
    // classify it: producer (111000) against consumer (000111) has
    // backlog 3, a bound no alternation-based class (max 2) can express.
    let design = library::multirate_design().expect("builds");
    assert!(design.is_weakly_hierarchic(), "{}", design.verdict());
    let analysis = design.capacity_analysis().expect("verified design");
    let capacity = analysis.bound_for(&Name::from("x")).expect("bounded");
    assert_eq!(capacity.bound, 3);
    assert!(capacity.bound > 2, "beyond every alternating class");
    assert!(
        capacity.provenance.contains("k-periodic")
            && capacity.provenance.contains("local phase words"),
        "{}",
        capacity.provenance
    );

    // And the derived deployment actually runs and conforms, under both
    // backends and both execution modes.
    let a: Vec<Value> = (0..18).map(|i| Value::Bool(i % 2 == 0)).collect();
    // `x` carries `a` on phases 1-3 of the 6-phase ring and `y` keeps every
    // third `x` token, so `y` sees `a` at instants 3, 9, 15, ...
    let expected_y: Vec<Value> = a.iter().skip(2).step_by(6).copied().collect();
    for mode in MODES {
        for backend in [Backend::Mpsc, Backend::SpscRing] {
            let mut deployment = design.deploy().expect("verified design");
            deployment.set_capacity_analysis(&analysis);
            deployment.set_execution_mode(mode).expect("valid mode");
            deployment.set_backend(backend);
            deployment.feed("a", a.iter().copied());
            let outcome = deployment.run().expect("the deployment runs");
            for component in &outcome.stats().components {
                assert_ne!(component.stop, StopReason::Deadlocked, "{mode}, {backend}");
            }
            assert_eq!(
                outcome.flow("y"),
                expected_y.as_slice(),
                "y decimates every third x ({mode}, {backend})"
            );
            let report = outcome.check_conformance().expect("reference registered");
            assert!(report.is_isochronous(), "{mode}, {backend}: {report}");
        }
    }
}

#[test]
fn a_partially_analyzed_composition_without_words_fails_cleanly() {
    // Regression for the `has_signal` guards: an interface-abstracted
    // composite whose algebra knows neither side's gating signals — and
    // whose components expose no periodic phase system — must produce a
    // typed unbounded verdict, not a panic inside the BDD encoding.
    use polychrony::signal_lang::{stdlib, ClockAst, Expr, ProcessBuilder};
    let abstraction = ProcessBuilder::new("pc_abs")
        .constraint_eq("u", ClockAst::when_true("a"))
        .define("u", Expr::cst(1).add(Expr::var("u").pre(0)))
        .synchro("v", "b")
        .define("v", Expr::var("v").pre(0).add(Expr::cst(1)))
        .inputs(["a", "b"])
        .outputs(["u", "v"])
        .build()
        .expect("well-formed");
    let design =
        Design::from_parts(abstraction, [stdlib::producer(), stdlib::consumer()]).expect("builds");
    assert!(design.is_weakly_hierarchic(), "{}", design.verdict());
    let analysis = design.capacity_analysis().expect("analysis completes");
    assert!(!analysis.is_fully_bounded());
    assert!(analysis.unbounded().contains_key(&Name::from("x")));
    // Under derived sizing the unbounded edge is the usual typed error,
    // surfaced when the deployment resolves its channel topology.
    let deployment = design.deploy_derived().expect("assembles");
    let err = deployment.topology().unwrap_err();
    assert!(
        matches!(err, DeployError::UnboundedEdge(ref n) if n == &Name::from("x")),
        "{err}"
    );
}

#[test]
fn an_unprimed_loop_is_refused_statically_with_a_typed_error() {
    // Two ordinary buffers in a feedback loop: verified, every edge
    // derives a finite bound — and yet the loop can never start, because
    // each buffer waits on its first read strictly before its first
    // emission.  PR 5's refuse-or-prove cycle path accepted this shape
    // (all feedback edges derivably bounded) and left the wait cycle to
    // the pool's dynamic `Deadlocked` detection; the priming-liveness
    // pass now refuses it statically.
    let design = library::unprimed_loop_design().expect("builds");
    assert!(design.is_weakly_hierarchic(), "{}", design.verdict());
    let err = design.capacity_analysis().unwrap_err();
    let DeployError::UnprimedCycle(cycle) = &err else {
        panic!("expected UnprimedCycle, got {err}");
    };
    assert_eq!(cycle.signals, vec![Name::from("p0"), Name::from("p1")]);
    assert!(err.to_string().contains("unprimed feedback loop"), "{err}");
    // deploy_derived goes through the same pass.
    assert!(matches!(
        design.deploy_derived().unwrap_err(),
        polychrony::isochron::DesignError::Deploy(DeployError::UnprimedCycle(_))
    ));
}

#[test]
fn an_installed_unprimed_verdict_refuses_the_run_before_it_starts() {
    // The run path honors a recorded liveness verdict even on hand-rolled
    // machines: the refusal happens before any thread spawns, instead of
    // the dynamic `Deadlocked` stop after the fact.
    use polychrony::gals_rt::UnprimedCycle;
    let mut analysis = alternating_bounds(&["p", "q"]);
    analysis.record_unprimed(UnprimedCycle {
        signals: vec![Name::from("p"), Name::from("q")],
        detail: "both relays wait on their first read".into(),
    });
    let mut deployment = ping_pong(4);
    deployment.set_capacity_analysis(&analysis);
    assert!(matches!(
        deployment.run().unwrap_err(),
        DeployError::UnprimedCycle(ref cycle) if cycle.signals.contains(&Name::from("p"))
    ));
}

#[test]
fn a_primed_loop_passes_the_liveness_pass_and_turns_forever() {
    // Flipping one register initialization (the primed buffer emits
    // before it reads) is exactly the fix the refusal message suggests:
    // the same topology now derives, deploys and turns until the step
    // budget — never `Deadlocked`.
    let design = library::primed_loop_design().expect("builds");
    assert!(design.is_weakly_hierarchic(), "{}", design.verdict());
    let analysis = design.capacity_analysis().expect("the primed loop is live");
    assert!(analysis.is_fully_bounded(), "{analysis}");
    assert!(analysis.unprimed_cycles().is_empty());
    let mut deployment = design.deploy().expect("verified design");
    deployment.set_capacity_analysis(&analysis);
    deployment
        .set_execution_mode(ExecutionMode::Pool {
            workers: 2,
            quantum: 3,
        })
        .expect("valid mode");
    deployment.set_max_steps(40).expect("nonzero");
    let outcome = deployment.run().expect("the primed loop runs");
    for component in &outcome.stats().components {
        assert_eq!(component.stop, StopReason::StepLimit, "{component}");
        assert_eq!(component.reactions, 40, "{component}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(ProptestConfig::cases_from_env(32)))]

    /// Tightness of the k-periodic backlog: for arbitrary ultimately
    /// periodic words it equals the exact supremum of the producer/consumer
    /// prefix-sum gap (simulated far beyond the analysis's own horizon),
    /// and it exists exactly when the producer's rate does not exceed the
    /// consumer's.
    #[test]
    fn kperiodic_backlogs_are_tight_against_simulation(
        p_prefix in prop::collection::vec(any::<bool>(), 0..4),
        p_period in prop::collection::vec(any::<bool>(), 1..7),
        c_prefix in prop::collection::vec(any::<bool>(), 0..4),
        c_period in prop::collection::vec(any::<bool>(), 1..7),
    ) {
        use polychrony::clocks::ClockWord;
        let producer = ClockWord::from_parts(p_prefix, p_period).expect("nonempty period");
        let consumer = ClockWord::from_parts(c_prefix, c_period).expect("nonempty period");
        let (p_ones, p_len) = producer.rate();
        let (c_ones, c_len) = consumer.rate();
        // A horizon several periods past where the analysis stops looking:
        // the gap sequence is eventually periodic, so if the bound were
        // ever exceeded it would be exceeded here too.
        let horizon = producer.prefix_len().max(consumer.prefix_len())
            + 8 * producer.period_len() * consumer.period_len()
            + 8;
        let simulated_sup = (1..=horizon)
            .map(|n| {
                let sent = producer.ones_before(n);
                let consumed = consumer.ones_before(n - 1);
                sent.saturating_sub(consumed)
            })
            .max()
            .unwrap_or(0);
        match ClockWord::backlog(&producer, &consumer) {
            Some(bound) => {
                prop_assert!(
                    p_ones * c_len <= c_ones * p_len,
                    "a finite backlog requires rate_p <= rate_c"
                );
                prop_assert_eq!(
                    bound, simulated_sup,
                    "backlog of {} against {}", producer, consumer
                );
            }
            None => prop_assert!(
                p_ones * c_len > c_ones * p_len,
                "backlog refused only on a genuine rate mismatch: {} vs {}",
                producer, consumer
            ),
        }
    }

    /// Sufficiency of the k-periodic bound end to end: whatever the
    /// environment stream, the multi-rate burst design runs to completion
    /// and conforms under its derived capacity.
    #[test]
    fn the_multirate_design_conforms_on_arbitrary_streams(
        stream in prop::collection::vec(any::<bool>(), 0..30),
    ) {
        let design = library::multirate_design().expect("builds");
        let analysis = design.capacity_analysis().expect("verified design");
        let stream: Vec<Value> = stream.into_iter().map(Value::Bool).collect();
        for mode in MODES {
            let mut deployment = design.deploy().expect("verified design");
            deployment.set_capacity_analysis(&analysis);
            deployment.set_execution_mode(mode).expect("valid mode");
            deployment.feed("a", stream.iter().copied());
            let outcome = deployment.run().expect("the deployment runs");
            for component in &outcome.stats().components {
                prop_assert_ne!(&component.stop, &StopReason::Deadlocked, "{}", mode);
            }
            let report = outcome.check_conformance().expect("reference registered");
            prop_assert!(report.is_isochronous(), "{}", report);
        }
    }
}

#[test]
fn fixed_sizing_keeps_the_legacy_cycle_behavior() {
    // Without derived bounds the historic contract holds: cycles are
    // refused unless explicitly allowed, and an allowed primed cycle
    // still completes.
    let deployment = ping_pong(3);
    assert_eq!(deployment.run().unwrap_err(), DeployError::CyclicTopology);
    let mut deployment = ping_pong(3);
    deployment.set_allow_cycles(true);
    deployment.set_capacity(2).expect("nonzero");
    let outcome = deployment.run().expect("allowed cycle runs");
    assert_eq!(outcome.stats().sizing, ChannelSizing::Fixed);
    assert_eq!(outcome.flow("p").len(), 3);
}
