//! The capacity-derivation and cycle-analysis subsystem end to end.
//!
//! The clock calculus that proves a design isochronous also bounds its
//! FIFOs: `Design::capacity_analysis` derives a per-edge capacity from the
//! rate relation between the producer's and consumer's clocks, and
//! `ChannelSizing::Derived` turns the bounds into the deployment's actual
//! channel capacities.  This suite checks the two directions of that
//! claim:
//!
//! * **sufficiency** — a replay with derived capacities never hits
//!   `StopReason::Deadlocked` and conforms to the synchronous reference
//!   (property-tested over generated pipelines and streams);
//! * **tightness-ish** — one below the derived bound is statically
//!   refused: capacity `bound - 1` on a sampled (bound 1) edge is the
//!   rejected zero capacity, and undercutting a feedback edge's derived
//!   bound is `InsufficientFeedbackCapacity`;
//!
//! plus the typed-error boundary: `UnboundedEdge` for edges the calculus
//! cannot bound, `NotVerified` for unverified designs, and the
//! refuse-or-prove cycle analysis (a derivably bounded feedback loop runs
//! to completion without `set_allow_cycles`; an underivable one is
//! refused naming the edge).

use polychrony::clocks::RateRelation;
use polychrony::gals_rt::{
    Backend, CapacityAnalysis, CapacitySource, ChannelSizing, DeployError, Deployment,
    DerivedCapacity, ExecutionMode, StepFault, StepMachine, StopReason,
};
use polychrony::isochron::{design::chain_of_pairs, library, Design};
use polychrony::moc::Value;
use polychrony::signal_lang::Name;
use proptest::prelude::*;

const MODES: [ExecutionMode; 2] = [
    ExecutionMode::ThreadPerComponent,
    ExecutionMode::Pool {
        workers: 2,
        quantum: 4,
    },
];

/// The closed half of a feedback loop: consumes one `seed` (environment)
/// and one `q` (feedback) token per reaction and emits the seed on `p`.
struct Ping {
    seeds: Vec<Value>,
    qs: Vec<Value>,
    produced: Vec<Value>,
}

impl StepMachine for Ping {
    fn machine_name(&self) -> &str {
        "ping"
    }
    fn input_signals(&self) -> Vec<Name> {
        vec![Name::from("seed"), Name::from("q")]
    }
    fn output_signals(&self) -> Vec<Name> {
        vec![Name::from("p")]
    }
    fn feed_value(&mut self, signal: &str, value: Value) {
        if signal == "seed" {
            self.seeds.push(value);
        } else {
            self.qs.push(value);
        }
    }
    fn try_step(&mut self) -> Result<(), StepFault> {
        if self.qs.is_empty() {
            return Err(StepFault::NeedInput(Name::from("q")));
        }
        if self.seeds.is_empty() {
            return Err(StepFault::NeedInput(Name::from("seed")));
        }
        self.qs.remove(0);
        let seed = self.seeds.remove(0);
        self.produced.push(seed);
        Ok(())
    }
    fn produced(&self, _signal: &str) -> &[Value] {
        &self.produced
    }
}

/// The primed half of the loop: emits one initial `q` token before ever
/// consuming — the channel-level image of an initialized delay register
/// breaking the instantaneous cycle — then relays `p` back to `q`.
struct Pong {
    primed: bool,
    queue: Vec<Value>,
    produced: Vec<Value>,
}

impl StepMachine for Pong {
    fn machine_name(&self) -> &str {
        "pong"
    }
    fn input_signals(&self) -> Vec<Name> {
        vec![Name::from("p")]
    }
    fn output_signals(&self) -> Vec<Name> {
        vec![Name::from("q")]
    }
    fn feed_value(&mut self, _signal: &str, value: Value) {
        self.queue.push(value);
    }
    fn try_step(&mut self) -> Result<(), StepFault> {
        if self.primed {
            self.primed = false;
            self.produced.push(Value::Int(0));
            return Ok(());
        }
        if self.queue.is_empty() {
            return Err(StepFault::NeedInput(Name::from("p")));
        }
        let value = self.queue.remove(0);
        self.produced.push(value);
        Ok(())
    }
    fn produced(&self, _signal: &str) -> &[Value] {
        &self.produced
    }
}

/// A primed feedback loop: ping -> p -> pong -> q -> ping.
fn ping_pong(seeds: usize) -> Deployment {
    let mut deployment = Deployment::new();
    deployment.add_machine(Box::new(Ping {
        seeds: Vec::new(),
        qs: Vec::new(),
        produced: Vec::new(),
    }));
    deployment.add_machine(Box::new(Pong {
        primed: true,
        queue: Vec::new(),
        produced: Vec::new(),
    }));
    deployment.feed("seed", (1..=seeds as i64).map(Value::Int));
    deployment
}

/// Derived two-place bounds for the loop's edges, as the calculus would
/// produce for strictly alternating phases of a primed register.
fn alternating_bounds(signals: &[&str]) -> CapacityAnalysis {
    let mut analysis = CapacityAnalysis::new();
    for signal in signals {
        analysis.insert(
            *signal,
            DerivedCapacity {
                bound: 2,
                relation: RateRelation::Alternating {
                    state: Name::from("t"),
                },
                provenance: format!("alternating on t: one {signal} in flight plus the primer"),
            },
        );
    }
    analysis
}

#[test]
fn every_stdlib_edge_gets_a_finite_derived_bound() {
    for design in [
        library::producer_consumer_design().unwrap(),
        library::buffer_pipeline_design(4).unwrap(),
        library::ltta_design().unwrap(),
        Design::compose("chain2", chain_of_pairs(2)).unwrap(),
    ] {
        let analysis = design.capacity_analysis().expect("verified design");
        assert!(analysis.is_fully_bounded(), "{}: {analysis}", design.name());
        let deployment = design.deploy_derived().expect("verified design");
        assert_eq!(deployment.sizing(), ChannelSizing::Derived);
        let topology = deployment.topology().expect("every edge bounded");
        assert!(!topology.channels.is_empty(), "{}", design.name());
        for spec in &topology.channels {
            assert_eq!(spec.source, CapacitySource::Derived, "{}", spec.signal);
            assert!(spec.capacity >= 1, "{}", spec.signal);
            let why = spec.derivation.as_deref().expect("derivation recorded");
            assert!(
                why.contains("producer at"),
                "{}: derivation {why}",
                spec.signal
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(ProptestConfig::cases_from_env(16)))]

    /// Sufficiency: whatever the stream and pipeline depth, the derived
    /// capacities never deadlock and the deployment conforms — under both
    /// backends and both execution modes.
    #[test]
    fn derived_capacities_are_sufficient(
        n in 1usize..5,
        stream in prop::collection::vec(any::<bool>(), 0..24),
    ) {
        let design = library::buffer_pipeline_design(n).expect("builds");
        // Derive once per case: the clock inference + BDD work is a
        // per-design cost, not a per-combination one.
        let analysis = design.capacity_analysis().expect("verified design");
        let stream: Vec<Value> = stream.into_iter().map(Value::Bool).collect();
        for mode in MODES {
            for backend in [Backend::Mpsc, Backend::SpscRing] {
                let mut deployment = design.deploy().expect("verified design");
                deployment.set_capacity_analysis(&analysis);
                deployment.set_execution_mode(mode).expect("valid mode");
                deployment.set_backend(backend);
                deployment.feed("p0", stream.iter().copied());
                let outcome = deployment.run().expect("the deployment runs");
                for component in &outcome.stats().components {
                    prop_assert_ne!(
                        &component.stop,
                        &StopReason::Deadlocked,
                        "derived capacities deadlocked ({mode}, {backend})"
                    );
                }
                prop_assert_eq!(outcome.flow(&format!("p{n}")), stream.as_slice());
                let report = outcome.check_conformance().expect("reference registered");
                prop_assert!(report.is_isochronous(), "{}", report);
            }
        }
    }
}

#[test]
fn bound_minus_one_on_a_sampled_edge_is_statically_blocked() {
    // Every edge of the buffer pipeline derives the paper's one-place
    // bound; one less is the zero capacity, which is refused up front (a
    // rendezvous would deadlock the worker loop).
    let design = library::buffer_pipeline_design(2).unwrap();
    let analysis = design.capacity_analysis().unwrap();
    let bound = analysis
        .bound_for(&Name::from("p1"))
        .expect("bounded")
        .bound;
    assert_eq!(bound, 1);
    let mut deployment = design.deploy_derived().unwrap();
    assert_eq!(
        deployment
            .set_channel_capacity("p1", bound - 1)
            .unwrap_err(),
        DeployError::ZeroCapacity(Some(Name::from("p1")))
    );
}

#[test]
fn a_derivably_bounded_cycle_runs_to_completion() {
    // The feedback loop is primed and both edges carry their derived
    // two-place bound: the cycle is *proven* safe, so no
    // `set_allow_cycles` is needed and no run ends `Deadlocked` — in
    // either execution mode.
    for mode in MODES {
        let mut deployment = ping_pong(8);
        deployment.set_capacity_analysis(&alternating_bounds(&["p", "q"]));
        deployment.set_execution_mode(mode).expect("valid mode");
        let topology = deployment.topology().expect("bounded");
        assert!(topology.has_cycle());
        assert_eq!(
            topology.cycle_signals(),
            [Name::from("p"), Name::from("q")].into_iter().collect()
        );
        let outcome = deployment.run().expect("the proven cycle runs");
        for component in &outcome.stats().components {
            assert_ne!(component.stop, StopReason::Deadlocked, "{mode}");
        }
        // Every seed made it around the loop, after the priming token.
        let p: Vec<i64> = outcome
            .flow("p")
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(p, (1..=8).collect::<Vec<_>>(), "{mode}");
        let q = outcome.flow("q");
        assert_eq!(q.len(), 9, "{mode}");
        assert_eq!(q[0], Value::Int(0), "{mode}");
    }
}

#[test]
fn feedback_capacity_below_the_derived_bound_is_refused() {
    // Tightness of the cycle criterion: undercutting the derived bound on
    // a feedback edge is refused statically — even when cycles were
    // explicitly allowed, because here the calculus positively proves the
    // channel can fill and wedge the loop.
    for allow in [false, true] {
        let mut deployment = ping_pong(4);
        deployment.set_capacity_analysis(&alternating_bounds(&["p", "q"]));
        deployment.set_channel_capacity("q", 1).expect("nonzero");
        deployment.set_allow_cycles(allow);
        assert_eq!(
            deployment.run().unwrap_err(),
            DeployError::InsufficientFeedbackCapacity {
                signal: Name::from("q"),
                required: 2,
                actual: 1,
            }
        );
    }
}

#[test]
fn an_underivable_cycle_is_refused_naming_the_edge() {
    // Only p has a derived bound: the q edge resolves to nothing under
    // derived sizing and the topology itself is refused.
    let mut deployment = ping_pong(4);
    deployment.set_capacity_analysis(&alternating_bounds(&["p"]));
    assert_eq!(
        deployment.run().unwrap_err(),
        DeployError::UnboundedEdge(Name::from("q"))
    );

    // An explicit override sizes the q edge, but does not *prove* it: the
    // cycle still needs the explicit opt-in, and the refusal names the
    // unproven edge (a distinct error from UnboundedEdge — the remedy is
    // set_allow_cycles, not set_channel_capacity).
    let mut deployment = ping_pong(4);
    deployment.set_capacity_analysis(&alternating_bounds(&["p"]));
    deployment.set_channel_capacity("q", 4).expect("nonzero");
    let err = deployment.run().unwrap_err();
    assert_eq!(err, DeployError::UnprovenFeedbackEdge(Name::from("q")));
    assert!(err.to_string().contains("allow_cycles"), "{err}");

    // With the opt-in, the override-sized loop runs (dynamic detection
    // remains the safety net in pool mode).
    let mut deployment = ping_pong(4);
    deployment.set_capacity_analysis(&alternating_bounds(&["p"]));
    deployment.set_channel_capacity("q", 4).expect("nonzero");
    deployment.set_allow_cycles(true);
    let outcome = deployment.run().expect("allowed cycle runs");
    assert_eq!(outcome.flow("p").len(), 4);
}

/// A one-in/one-out relay, for acyclic hand-rolled topologies.
struct Relay {
    name: String,
    input: Name,
    output: Name,
    queue: Vec<Value>,
    produced: Vec<Value>,
}

impl Relay {
    fn boxed(name: &str, input: &str, output: &str) -> Box<Self> {
        Box::new(Relay {
            name: name.into(),
            input: Name::from(input),
            output: Name::from(output),
            queue: Vec::new(),
            produced: Vec::new(),
        })
    }
}

impl StepMachine for Relay {
    fn machine_name(&self) -> &str {
        &self.name
    }
    fn input_signals(&self) -> Vec<Name> {
        vec![self.input.clone()]
    }
    fn output_signals(&self) -> Vec<Name> {
        vec![self.output.clone()]
    }
    fn feed_value(&mut self, _signal: &str, value: Value) {
        self.queue.push(value);
    }
    fn try_step(&mut self) -> Result<(), StepFault> {
        if self.queue.is_empty() {
            return Err(StepFault::NeedInput(self.input.clone()));
        }
        let value = self.queue.remove(0);
        self.produced.push(value);
        Ok(())
    }
    fn produced(&self, _signal: &str) -> &[Value] {
        &self.produced
    }
}

#[test]
fn unbounded_edges_are_typed_errors_on_acyclic_topologies_too() {
    // Hand-rolled machines carry no clock information: under derived
    // sizing, an edge without an installed bound or an override is a
    // typed error naming the signal — at topology() and at run().
    let acyclic = || {
        let mut deployment = Deployment::new();
        deployment.add_machine(Relay::boxed("a", "s0", "s1"));
        deployment.add_machine(Relay::boxed("b", "s1", "s2"));
        deployment.feed("s0", (1..=3).map(Value::Int));
        deployment.set_sizing(ChannelSizing::Derived);
        deployment
    };
    assert_eq!(
        acyclic().topology().unwrap_err(),
        DeployError::UnboundedEdge(Name::from("s1"))
    );
    assert_eq!(
        acyclic().run().unwrap_err(),
        DeployError::UnboundedEdge(Name::from("s1"))
    );
    // An explicit override unblocks the edge.
    let mut deployment = acyclic();
    deployment.set_channel_capacity("s1", 2).expect("nonzero");
    let outcome = deployment.run().expect("runs");
    assert_eq!(outcome.flow("s2").len(), 3);
}

#[test]
fn unverified_designs_cannot_derive_bounds() {
    use polychrony::signal_lang::{stdlib, Expr, ProcessBuilder};
    let loose = ProcessBuilder::new("loose")
        .define("d", Expr::var("y").default(Expr::var("z")))
        .build()
        .unwrap();
    let design = Design::compose("bad", [loose, stdlib::filter()]).expect("builds");
    assert_eq!(
        design.capacity_analysis().unwrap_err(),
        DeployError::NotVerified("bad".into())
    );
}

#[test]
fn fixed_sizing_keeps_the_legacy_cycle_behavior() {
    // Without derived bounds the historic contract holds: cycles are
    // refused unless explicitly allowed, and an allowed primed cycle
    // still completes.
    let deployment = ping_pong(3);
    assert_eq!(deployment.run().unwrap_err(), DeployError::CyclicTopology);
    let mut deployment = ping_pong(3);
    deployment.set_allow_cycles(true);
    deployment.set_capacity(2).expect("nonzero");
    let outcome = deployment.run().expect("allowed cycle runs");
    assert_eq!(outcome.stats().sizing, ChannelSizing::Fixed);
    assert_eq!(outcome.flow("p").len(), 3);
}
