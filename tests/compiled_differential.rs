//! Differential testing of the three execution strategies for generated
//! step programs: the tree-walking interpreter (`SequentialRuntime`), the
//! slot-indexed `CompiledRuntime`, and the emitted-Rust machine (the
//! `emit_rust` module compiled with `rustc` and driven over a pipe behind
//! `StepMachine`).
//!
//! Every paper process is driven over proptest-generated feeds by all
//! three machines; they must agree on every produced flow, on the number
//! of completed reactions, and on the stall boundary — which input ran
//! out (`NeedInput`) or whether the step faulted.  The emitted binaries
//! are compiled once per process (a `OnceLock` cache) and respawned per
//! case, so the fuzz loop pays only a process fork.
//!
//! The default case count is kept small (each case drives 15 processes
//! × 3 machines); the nightly fuzz lane cranks it up:
//!
//! ```text
//! PROPTEST_CASES=64 cargo test --test compiled_differential
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::OnceLock;

use polychrony::codegen::emitted::{compile_binary, EmittedMachine};
use polychrony::codegen::{machine_of, signal_types, SigType, StepProgram};
use polychrony::gals_rt::{MachineKind, StepFault, StepMachine};
use polychrony::isochron::Component;
use polychrony::moc::Value;
use polychrony::signal_lang::stdlib;
use proptest::prelude::*;

/// One process under differential test: its generated step program, the
/// inferred interface types, and the emitted-Rust binary.
struct Case {
    program: StepProgram,
    types: BTreeMap<polychrony::moc::Name, SigType>,
    binary: PathBuf,
}

/// All paper processes, their programs compiled to emitted-Rust binaries
/// exactly once for the whole test binary.
fn cases() -> &'static [Case] {
    static CASES: OnceLock<Vec<Case>> = OnceLock::new();
    CASES.get_or_init(|| {
        stdlib::all_paper_processes()
            .into_iter()
            .map(|def| {
                let name = def.name.clone();
                let component = Component::new(def)
                    .unwrap_or_else(|e| panic!("process {name} fails to analyze: {e}"));
                let program = component.step_program();
                let types = signal_types(&program);
                let binary = compile_binary(&program)
                    .unwrap_or_else(|e| panic!("process {name} fails to compile: {e}"));
                Case {
                    program,
                    types,
                    binary,
                }
            })
            .collect()
    })
}

/// How a drive ended: an input ran out, or the step faulted.  Fault
/// *messages* differ across the strategies (the emitted protocol carries
/// none), so only the kind and the stalling signal are compared.
#[derive(Debug, PartialEq, Eq)]
enum Stop {
    NeedInput(String),
    Fault,
}

/// Feeds the machine and steps it to exhaustion; returns the reaction
/// count, the stall boundary, and every produced output flow.
fn drive(
    machine: &mut dyn StepMachine,
    feeds: &[(String, Vec<Value>)],
) -> (u64, Stop, BTreeMap<String, Vec<Value>>) {
    for (signal, values) in feeds {
        for value in values {
            machine.feed_value(signal, *value);
        }
    }
    let mut steps = 0u64;
    let stop = loop {
        match machine.try_step() {
            Ok(()) => steps += 1,
            Err(StepFault::NeedInput(signal)) => break Stop::NeedInput(signal.to_string()),
            Err(StepFault::Fault(_)) => break Stop::Fault,
        }
        assert!(
            steps < 10_000,
            "{} never exhausted its feeds",
            machine.machine_name()
        );
    };
    let flows = machine
        .output_signals()
        .iter()
        .map(|signal| {
            (
                signal.to_string(),
                machine.produced(signal.as_str()).to_vec(),
            )
        })
        .collect();
    (steps, stop, flows)
}

/// SplitMix64, so each (seed, process) pair draws its own value stream
/// without threading the proptest rng through the helper.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Random feeds for the case's inputs, typed by inference.  Untyped
/// (value-polymorphic) inputs are fed `Int` — the emitted-Rust module
/// monomorphizes them to `i64` (the documented fallback), so `Int` is the
/// one value kind all three machines accept there.
fn random_feeds(case: &Case, seed: u64, base_len: usize) -> Vec<(String, Vec<Value>)> {
    let mut state = seed ^ 0x5ca1_ab1e_0000_0000;
    case.program
        .inputs
        .iter()
        .map(|input| {
            let len = (mix(&mut state) as usize) % (base_len + 1);
            let values = (0..len)
                .map(|_| match case.types.get(input) {
                    Some(SigType::Bool) => Value::Bool(mix(&mut state) & 1 == 1),
                    _ => Value::Int((mix(&mut state) % 17) as i64 - 8),
                })
                .collect();
            (input.to_string(), values)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(ProptestConfig::cases_from_env(8)))]

    /// The interpreter, the compiled runtime and the emitted-Rust machine
    /// observe identical flows, reaction counts and stall boundaries on
    /// every paper process over random typed feeds.
    #[test]
    fn all_three_strategies_agree_on_every_paper_process(
        seed in any::<u64>(),
        base_len in 0usize..10,
    ) {
        for case in cases() {
            let feeds = random_feeds(case, seed, base_len);
            let mut interpreted = machine_of(MachineKind::Interpreted, case.program.clone());
            let mut compiled = machine_of(MachineKind::Compiled, case.program.clone());
            let mut emitted = EmittedMachine::spawn(&case.program, &case.binary)
                .expect("the emitted binary spawns");
            let reference = drive(interpreted.as_mut(), &feeds);
            let compiled_run = drive(compiled.as_mut(), &feeds);
            let emitted_run = drive(&mut emitted, &feeds);
            prop_assert_eq!(
                &compiled_run,
                &reference,
                "{}: CompiledRuntime diverged from the interpreter on {:?}",
                case.program.name,
                feeds
            );
            prop_assert_eq!(
                &emitted_run,
                &reference,
                "{}: the emitted-Rust machine diverged from the interpreter on {:?}",
                case.program.name,
                feeds
            );
        }
    }
}
