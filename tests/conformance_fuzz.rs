//! Conformance fuzzing: proptest-generated designs and environment
//! streams replayed through `Deployment` and the dynamic isochrony
//! checker, under **both** channel backends and **both** execution modes,
//! with both fixed and clock-derived channel sizing.
//!
//! Every verified scenario must conform (Theorem 1); the deliberately
//! unverified scenario must diverge *detectably* — the checker reports
//! the mismatch instead of silently accepting it.  This is the suite the
//! nightly `fuzz` CI lane cranks up via `PROPTEST_CASES` (the default
//! here is kept small so the tier-1 gate stays fast):
//!
//! ```text
//! PROPTEST_CASES=64 cargo test --test conformance_fuzz
//! ```

use polychrony::gals_rt::{Backend, Deployment, ExecutionMode, MachineKind, StopReason};
use polychrony::isochron::{design::chain_of_pairs, library, Design};
use polychrony::moc::Value;
use proptest::prelude::*;

const MODES: [ExecutionMode; 2] = [
    ExecutionMode::ThreadPerComponent,
    ExecutionMode::Pool {
        workers: 2,
        quantum: 3,
    },
];

fn bools(values: &[bool]) -> Vec<Value> {
    values.iter().map(|&b| Value::Bool(b)).collect()
}

/// Replays the design under every (kind × mode × backend × sizing)
/// combination and asserts conformance plus deadlock-freedom for each;
/// all runs must observe identical flows.
fn assert_conformant_everywhere(design: &Design, feeds: &[(&str, Vec<Value>)], capacity: usize) {
    // Derive once per case: the clock inference + BDD work is a
    // per-design cost, not a per-combination one.
    let analysis = design.capacity_analysis().expect("the design is verified");
    let mut reference: Option<polychrony::sim::Flows> = None;
    for kind in [MachineKind::Interpreted, MachineKind::Compiled] {
        for mode in MODES {
            for backend in [Backend::Mpsc, Backend::SpscRing] {
                for derived in [false, true] {
                    let mut deployment: Deployment =
                        design.deploy_with(kind).expect("the design is verified");
                    if derived {
                        deployment.set_capacity_analysis(&analysis);
                    } else {
                        deployment.set_capacity(capacity).expect("nonzero");
                    }
                    deployment.set_execution_mode(mode).expect("valid mode");
                    deployment.set_backend(backend);
                    for (signal, values) in feeds {
                        deployment.feed(*signal, values.iter().copied());
                    }
                    let outcome = deployment.run().expect("the deployment runs");
                    for component in &outcome.stats().components {
                        assert_ne!(
                            component.stop,
                            StopReason::Deadlocked,
                            "{} deadlocked ({kind}, {mode}, {backend}, derived {derived})",
                            design.name()
                        );
                    }
                    let report = outcome.check_conformance().expect("reference registered");
                    assert!(
                        report.is_isochronous(),
                        "{} diverged ({kind}, {mode}, {backend}, derived {derived}, capacity \
                         {capacity}): {report}\nstats:\n{}",
                        design.name(),
                        outcome.stats()
                    );
                    match &reference {
                        None => reference = Some(outcome.flows().clone()),
                        Some(flows) => assert_eq!(
                            outcome.flows(),
                            flows,
                            "{} observed different flows across combinations",
                            design.name()
                        ),
                    }
                }
            }
        }
    }
}

/// A parametric multi-rate burst pair under interface abstraction: the
/// source reads `a` every tick of a `k`-phase one-hot ring and emits `x`
/// during phases `1..=h` (word `1^h 0^(k-h)`), the sink reads `x` during
/// phases `k-h+1..=k` (word `0^(k-h) 1^h`) and decimates to `y` on the
/// last phase.  The abstraction hides `x` and every ring, so the global
/// algebra proves nothing about the edge — its bound (`h`, the full
/// burst) comes from the components' local k-periodic words alone.
fn burst_design(k: usize, h: usize) -> Design {
    use polychrony::signal_lang::{stdlib::one_hot_ring, ClockAst, Expr, ProcessBuilder};
    assert!(0 < h && h <= k && 2 <= k);
    let phase_or = |prefix: &str, lo: usize, hi: usize| {
        (lo + 1..=hi).fold(Expr::var(format!("{prefix}{lo}")), |e, i| {
            e.or(Expr::var(format!("{prefix}{i}")))
        })
    };
    let hidden = |prefix: &str, extra: &[&str]| {
        (1..=k)
            .map(|i| format!("{prefix}{i}"))
            .chain(extra.iter().map(|s| (*s).to_string()))
            .collect::<Vec<_>>()
    };
    let source = one_hot_ring(ProcessBuilder::new("burst_source"), "p", k)
        .synchro("a", "w")
        .define("w", phase_or("p", 1, h))
        .define("x", Expr::var("a").when(Expr::var("w")))
        .hide(hidden("p", &["w"]))
        .input("a")
        .output("x")
        .build()
        .expect("well-formed");
    let sink = one_hot_ring(ProcessBuilder::new("burst_sink"), "c", k)
        .define("v", phase_or("c", k - h + 1, k))
        .constraint_eq("x", ClockAst::when_true("v"))
        .define("y", Expr::var("x").when(Expr::var(format!("c{k}"))))
        .hide(hidden("c", &["v"]))
        .input("x")
        .output("y")
        .build()
        .expect("well-formed");
    let main = one_hot_ring(ProcessBuilder::new("burst_main"), "m", k)
        .synchro("a", "g")
        .define("g", phase_or("m", 1, h))
        .define("x", Expr::var("a").when(Expr::var("g")))
        .define("y", Expr::var("x").when(Expr::var(format!("m{h}"))))
        .hide(hidden("m", &["g", "x"]))
        .input("a")
        .output("y")
        .build()
        .expect("well-formed");
    Design::from_parts(main, [source, sink]).expect("weakly hierarchic")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(ProptestConfig::cases_from_env(16)))]

    /// Buffer pipelines of fuzzed depth forward fuzzed streams unchanged,
    /// conformantly, at fuzzed capacities.
    #[test]
    fn buffer_pipelines_conform(
        n in 1usize..5,
        stream in prop::collection::vec(any::<bool>(), 0..24),
        capacity in 1usize..5,
    ) {
        let design = library::buffer_pipeline_design(n).expect("builds");
        assert_conformant_everywhere(&design, &[("p0", bools(&stream))], capacity);
    }

    /// Multi-rate burst pipelines of fuzzed ring length and burst width
    /// conform on fuzzed streams: the edge bound is the k-periodic
    /// backlog (the full burst), derivable only from the local words,
    /// and the decimated output must still match the synchronous
    /// reference under every mode, backend and sizing.
    #[test]
    fn multirate_burst_pipelines_conform(
        k in 2usize..7,
        width in 1usize..6,
        stream in prop::collection::vec(any::<bool>(), 0..24),
        capacity in 1usize..5,
    ) {
        let h = width.min(k);
        let design = burst_design(k, h);
        assert_conformant_everywhere(&design, &[("a", bools(&stream))], capacity);
    }

    /// The producer/consumer pair conforms on every environment stream
    /// satisfying its coupling `[not a] = [b]` (b drawn as the pointwise
    /// negation of a fuzzed a).
    #[test]
    fn producer_consumer_streams_conform(
        a in prop::collection::vec(any::<bool>(), 0..24),
        capacity in 1usize..5,
    ) {
        let b: Vec<bool> = a.iter().map(|&v| !v).collect();
        let design = library::producer_consumer_design().expect("builds");
        assert_conformant_everywhere(
            &design,
            &[("a", bools(&a)), ("b", bools(&b))],
            capacity,
        );
    }

    /// Chains of producer/consumer pairs conform pair by pair, each pair
    /// on its own fuzzed stream slice.
    #[test]
    fn chains_of_pairs_conform(
        pattern in prop::collection::vec(any::<bool>(), 0..16),
        pairs in 1usize..3,
    ) {
        let design = Design::compose(format!("chain{pairs}"), chain_of_pairs(pairs))
            .expect("builds");
        let negated: Vec<bool> = pattern.iter().map(|&v| !v).collect();
        let mut feeds: Vec<(String, Vec<Value>)> = Vec::new();
        for pair in 0..pairs {
            feeds.push((format!("a{pair}"), bools(&pattern)));
            feeds.push((format!("b{pair}"), bools(&negated)));
        }
        let feeds: Vec<(&str, Vec<Value>)> = feeds
            .iter()
            .map(|(signal, values)| (signal.as_str(), values.clone()))
            .collect();
        assert_conformant_everywhere(&design, &feeds, 2);
    }

    /// The LTTA conforms on fuzzed device activation clocks: the writer
    /// input carries one token per true instant of its fuzzed clock `cw`,
    /// and the reader's clock `cr` is fuzzed independently.
    #[test]
    fn ltta_streams_conform(
        cw in prop::collection::vec(any::<bool>(), 0..24),
        cr in prop::collection::vec(any::<bool>(), 0..24),
    ) {
        let writes = cw.iter().filter(|&&v| v).count() as i64;
        let xw: Vec<Value> = (1..=writes).map(Value::Int).collect();
        let design = library::ltta_design().expect("builds");
        assert_conformant_everywhere(
            &design,
            &[("xw", xw), ("cw", bools(&cw)), ("cr", bools(&cr))],
            1,
        );
    }

    /// The negative control: an unverified design (the consumer without
    /// the `^x = [b]` coupling) must diverge *detectably* — the checker
    /// reports the mismatch on every backend and mode.
    #[test]
    fn divergence_of_an_unverified_design_is_detected(rounds in 2usize..8) {
        use polychrony::signal_lang::{stdlib, Expr, ProcessBuilder};
        let consumer_nosync = ProcessBuilder::new("consumer_nosync")
            .synchro("v", "b")
            .define(
                "v",
                Expr::var("v")
                    .pre(0)
                    .add(Expr::var("x").default(Expr::cst(1))),
            )
            .inputs(["b", "x"])
            .output("v")
            .build()
            .unwrap();
        let design = Design::compose("unsynchronized", [stdlib::producer(), consumer_nosync])
            .expect("builds");
        prop_assert!(!design.verdict().weakly_hierarchic);
        // No capacity bound may be derived from an unverified design.
        prop_assert!(design.capacity_analysis().is_err());
        let a: Vec<bool> = (0..2 * rounds).map(|i| i % 2 == 0).collect();
        let b: Vec<bool> = a.iter().map(|&v| !v).collect();
        for mode in MODES {
            for backend in [Backend::Mpsc, Backend::SpscRing] {
                let mut deployment = design.deploy_unchecked();
                deployment.set_execution_mode(mode).expect("valid mode");
                deployment.set_backend(backend);
                deployment.feed("a", bools(&a));
                deployment.feed("b", bools(&b));
                let outcome = deployment.run().expect("the deployment still runs");
                let report = outcome.check_conformance().expect("reference registered");
                prop_assert!(
                    !report.is_isochronous(),
                    "the divergence went undetected ({mode}, {backend}): {report}"
                );
                prop_assert!(!report.mismatches().is_empty());
            }
        }
    }
}
