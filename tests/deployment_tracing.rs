//! The deployment tracing subsystem, end to end: a traced run of a
//! verified design yields a merged per-thread timeline whose timestamps
//! are monotonic per component, whose events balance (every
//! `ReactionBegin` has an `End`, every `BlockedOn` an `Unblocked` or a
//! terminal stop), whose per-edge occupancy high-water marks respect the
//! derived capacity bounds (an empirical witness for the clock calculus),
//! whose drift report agrees with the static performance predictor on the
//! analytic pipelines, and whose Chrome trace-event export is valid JSON.

use polychrony::gals_rt::{Backend, ExecutionMode, Trace, TraceConfig, TraceEvent};
use polychrony::isochron::{library, Design};
use polychrony::moc::Value;
use proptest::prelude::*;

const MODES: [ExecutionMode; 2] = [
    ExecutionMode::ThreadPerComponent,
    ExecutionMode::Pool {
        workers: 2,
        quantum: 4,
    },
];

fn bools(values: &[bool]) -> Vec<Value> {
    values.iter().map(|&b| Value::Bool(b)).collect()
}

/// A minimal JSON validity checker (no serde in the offline image): parses
/// the full grammar and panics with position context on the first
/// violation.  Returns the number of elements in the top-level
/// `traceEvents` array when present.
mod json {
    pub fn assert_valid(text: &str) {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        parse_value(bytes, &mut pos);
        skip_ws(bytes, &mut pos);
        assert_eq!(pos, bytes.len(), "trailing garbage at byte {pos}");
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, byte: u8) {
        assert!(
            *pos < bytes.len() && bytes[*pos] == byte,
            "expected {:?} at byte {pos:?}",
            byte as char
        );
        *pos += 1;
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) {
        skip_ws(bytes, pos);
        assert!(*pos < bytes.len(), "unexpected end of input");
        match bytes[*pos] {
            b'{' => parse_object(bytes, pos),
            b'[' => parse_array(bytes, pos),
            b'"' => parse_string(bytes, pos),
            b't' => parse_literal(bytes, pos, b"true"),
            b'f' => parse_literal(bytes, pos, b"false"),
            b'n' => parse_literal(bytes, pos, b"null"),
            _ => parse_number(bytes, pos),
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) {
        expect(bytes, pos, b'{');
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return;
        }
        loop {
            skip_ws(bytes, pos);
            parse_string(bytes, pos);
            skip_ws(bytes, pos);
            expect(bytes, pos, b':');
            parse_value(bytes, pos);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(&b',') => *pos += 1,
                Some(&b'}') => {
                    *pos += 1;
                    return;
                }
                other => panic!("expected ',' or '}}' at byte {pos:?}, found {other:?}"),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) {
        expect(bytes, pos, b'[');
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return;
        }
        loop {
            parse_value(bytes, pos);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(&b',') => *pos += 1,
                Some(&b']') => {
                    *pos += 1;
                    return;
                }
                other => panic!("expected ',' or ']' at byte {pos:?}, found {other:?}"),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) {
        expect(bytes, pos, b'"');
        while *pos < bytes.len() {
            match bytes[*pos] {
                b'"' => {
                    *pos += 1;
                    return;
                }
                b'\\' => {
                    *pos += 1;
                    assert!(*pos < bytes.len(), "dangling escape");
                    match bytes[*pos] {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => *pos += 1,
                        b'u' => {
                            assert!(*pos + 4 < bytes.len(), "short unicode escape");
                            for _ in 0..4 {
                                *pos += 1;
                                assert!(
                                    bytes[*pos].is_ascii_hexdigit(),
                                    "bad unicode escape at byte {pos:?}"
                                );
                            }
                            *pos += 1;
                        }
                        other => panic!("bad escape {:?} at byte {pos:?}", other as char),
                    }
                }
                c if c < 0x20 => panic!("raw control byte {c:#x} in string at byte {pos:?}"),
                _ => *pos += 1,
            }
        }
        panic!("unterminated string");
    }

    fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &[u8]) {
        assert!(
            bytes[*pos..].starts_with(literal),
            "bad literal at byte {pos:?}"
        );
        *pos += literal.len();
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let digits = |bytes: &[u8], pos: &mut usize| {
            let from = *pos;
            while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                *pos += 1;
            }
            assert!(*pos > from, "expected digits at byte {:?}", *pos);
        };
        digits(bytes, pos);
        if bytes.get(*pos) == Some(&b'.') {
            *pos += 1;
            digits(bytes, pos);
        }
        if matches!(bytes.get(*pos), Some(&b'e') | Some(&b'E')) {
            *pos += 1;
            if matches!(bytes.get(*pos), Some(&b'+') | Some(&b'-')) {
                *pos += 1;
            }
            digits(bytes, pos);
        }
        assert!(*pos > start, "empty number at byte {:?}", *pos);
    }
}

/// Checks the structural invariants of one merged timeline: monotonic
/// timestamps, balanced reaction pairs, and blocked episodes that close
/// with an `Unblocked` or a terminal stop.
fn assert_timeline_invariants(trace: &Trace, context: &str) {
    for component in trace.components().iter().chain(trace.workers()) {
        let mut last_ts = 0u64;
        let mut in_reaction = false;
        let mut reaction_begins = 0u64;
        let mut reaction_ends = 0u64;
        let mut open_block: Option<&polychrony::moc::Name> = None;
        let mut blocked = 0u64;
        let mut unblocked = 0u64;
        let mut stopped = false;
        for record in component.records() {
            assert!(
                record.ts_ns >= last_ts,
                "{context}: {}: timestamps regress ({} after {last_ts})",
                component.name(),
                record.ts_ns
            );
            last_ts = record.ts_ns;
            assert!(
                !stopped,
                "{context}: {}: event after the terminal stop",
                component.name()
            );
            match &record.event {
                TraceEvent::ReactionBegin => {
                    assert!(
                        !in_reaction,
                        "{context}: {}: nested ReactionBegin",
                        component.name()
                    );
                    in_reaction = true;
                    reaction_begins += 1;
                }
                TraceEvent::ReactionEnd => {
                    assert!(
                        in_reaction,
                        "{context}: {}: ReactionEnd without Begin",
                        component.name()
                    );
                    in_reaction = false;
                    reaction_ends += 1;
                }
                TraceEvent::BlockedOn { signal, .. } => {
                    assert!(
                        open_block.is_none(),
                        "{context}: {}: BlockedOn while an episode is open",
                        component.name()
                    );
                    open_block = Some(signal);
                    blocked += 1;
                }
                TraceEvent::Unblocked { signal } => {
                    assert_eq!(
                        open_block,
                        Some(signal),
                        "{context}: {}: Unblocked without a matching BlockedOn",
                        component.name()
                    );
                    open_block = None;
                    unblocked += 1;
                }
                TraceEvent::Stop { .. } => stopped = true,
                TraceEvent::TokenSent { .. }
                | TraceEvent::TokenReceived { .. }
                | TraceEvent::Dispatch { .. }
                | TraceEvent::Park => {}
            }
        }
        assert_eq!(
            reaction_begins,
            reaction_ends,
            "{context}: {}: unbalanced reactions",
            component.name()
        );
        if component.dropped() == 0 {
            assert_eq!(
                reaction_begins,
                component.reactions(),
                "{context}: {}: timeline disagrees with the exact counter",
                component.name()
            );
        }
        // Every BlockedOn closes with an Unblocked, or terminally: at most
        // one episode may stay open, and only on a stopped component.
        assert!(
            blocked == unblocked || (blocked == unblocked + 1 && stopped),
            "{context}: {}: {blocked} BlockedOn vs {unblocked} Unblocked (stopped: {stopped})",
            component.name()
        );
    }
}

/// Runs the design traced under the given mode/backend and returns the
/// outcome (panics when tracing produced nothing).
fn traced_run(
    design: &Design,
    feeds: &[(&str, Vec<Value>)],
    mode: ExecutionMode,
    backend: Backend,
    derived: bool,
) -> polychrony::gals_rt::DeploymentOutcome {
    let mut deployment = if derived {
        design.deploy_derived().expect("verified design")
    } else {
        design.deploy().expect("verified design")
    };
    deployment.set_execution_mode(mode).expect("valid mode");
    deployment.set_backend(backend);
    deployment.set_tracing(true);
    for (signal, values) in feeds {
        deployment.feed(*signal, values.iter().copied());
    }
    deployment.run().expect("the deployment runs")
}

#[test]
fn a_traced_pipeline_exports_parseable_chrome_json_within_capacity_bounds() {
    // The acceptance scenario: a verified stdlib pipeline, traced, under
    // both execution modes on the derived-capacity ring backend.
    const TOKENS: usize = 32;
    let n = 4usize;
    let design = library::buffer_pipeline_design(n).expect("builds");
    let stream: Vec<bool> = (0..TOKENS).map(|i| i % 3 == 0).collect();
    for mode in MODES {
        let outcome = traced_run(
            &design,
            &[("p0", bools(&stream))],
            mode,
            Backend::SpscRing,
            true,
        );
        let trace = outcome.trace().expect("tracing was on");
        assert_timeline_invariants(trace, &format!("pipe{n} {mode}"));
        assert_eq!(trace.dropped(), 0, "default buffers hold this run");

        // The Chrome trace-event export is valid JSON, and carries the
        // thread-name metadata Perfetto uses to label the rows.
        let json = trace.to_chrome_json();
        json::assert_valid(&json);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("stage0"), "component rows labeled");

        // Occupancy witness: on the ring backend every edge reports a
        // high-water mark, and it never exceeds the derived bound.
        let summary = trace.summary();
        assert_eq!(summary.edges.len(), n - 1);
        for edge in &summary.edges {
            let hw = edge.high_water.expect("the ring reports occupancy");
            assert!(
                hw <= edge.capacity,
                "{mode}: edge {} high water {hw} exceeds derived capacity {}",
                edge.signal,
                edge.capacity
            );
            assert_eq!(edge.within_capacity(), Some(true));
            // The pipeline drains completely: every token sent crossed.
            assert_eq!(edge.tokens_sent, TOKENS as u64, "{mode}: {}", edge.signal);
            assert_eq!(edge.tokens_received, TOKENS as u64);
        }
        assert!(summary.occupancy_within_capacity());

        // The summary's exact counters agree with the end-of-run stats.
        let stats = outcome.stats();
        assert_eq!(
            summary.components.iter().map(|c| c.reactions).sum::<u64>(),
            stats.total_reactions()
        );
        assert_eq!(
            summary.edges.iter().map(|e| e.tokens_sent).sum::<u64>(),
            stats.total_tokens()
        );
        assert_eq!(
            summary.edges.iter().map(|e| e.tokens_received).sum::<u64>(),
            stats.total_tokens_received()
        );
        let rendered = stats.to_string();
        assert!(
            rendered.contains("trace:"),
            "the summary rides in the stats report:\n{rendered}"
        );
    }
}

#[test]
fn the_drift_report_matches_the_analytic_pipeline_model() {
    // tests/performance_prediction.rs establishes the analytic facts:
    // every stage of an n-stage buffer pipeline performs exactly 2
    // reactions per environment token and every edge carries exactly 1.
    // The drift report must reproduce them edge by edge: zero edge drift
    // (the pipeline drains completely) and per-component reaction drift
    // within the final partial wave.
    const TOKENS: usize = 64;
    for n in [2usize, 4] {
        let design = library::buffer_pipeline_design(n).expect("builds");
        let prediction = design.performance_prediction().expect("derives");
        let stream: Vec<bool> = (0..TOKENS).map(|i| i % 2 == 0).collect();
        for mode in MODES {
            let outcome = traced_run(
                &design,
                &[("p0", bools(&stream))],
                mode,
                Backend::SpscRing,
                true,
            );
            let trace = outcome.trace().expect("tracing was on");
            let report = trace.drift_report(&prediction, TOKENS as u64);
            assert_eq!(report.components.len(), n);
            for component in &report.components {
                assert_eq!(
                    component.predicted,
                    (2 * TOKENS) as f64,
                    "pipe{n} {mode}: {} analytic rate",
                    component.name
                );
                assert!(
                    component.drift().abs() <= 2.0,
                    "pipe{n} {mode}: {} predicted {} measured {}",
                    component.name,
                    component.predicted,
                    component.measured
                );
            }
            assert_eq!(report.edges.len(), n - 1);
            for edge in &report.edges {
                assert_eq!(
                    edge.predicted, TOKENS as f64,
                    "pipe{n} {mode}: {}",
                    edge.signal
                );
                assert_eq!(
                    edge.drift(),
                    0.0,
                    "pipe{n} {mode}: edge {} sent {} received {}",
                    edge.signal,
                    edge.sent,
                    edge.received
                );
            }
            assert!(report.within((2 * n) as f64), "pipe{n} {mode}:\n{report}");
            assert_eq!(report.max_edge_drift(), 0.0);
            let rendered = report.to_string();
            assert!(rendered.contains("drift report over 64 input token(s)"));
        }
    }
}

#[test]
fn an_untraced_run_carries_no_trace() {
    let design = library::buffer_pipeline_design(2).expect("builds");
    let mut deployment = design.deploy().expect("verified");
    deployment.feed("p0", [true, false, true].map(Value::Bool));
    assert!(!deployment.tracing());
    let outcome = deployment.run().expect("runs");
    assert!(outcome.trace().is_none());
    assert!(outcome.stats().trace.is_none());
}

#[test]
fn a_tiny_trace_buffer_truncates_the_timeline_but_not_the_aggregates() {
    const TOKENS: usize = 48;
    let design = library::buffer_pipeline_design(3).expect("builds");
    let mut deployment = design.deploy().expect("verified");
    deployment.set_trace_config(TraceConfig { buffer_capacity: 8 });
    deployment.feed("p0", (0..TOKENS).map(|i| Value::Bool(i % 2 == 0)));
    let outcome = deployment.run().expect("runs");
    let trace = outcome.trace().expect("tracing on");
    assert!(trace.dropped() > 0, "48 tokens overflow 8-record buffers");
    for component in trace.components() {
        assert!(component.records().len() <= 8);
    }
    // The summary is computed from the exact aggregates, not the
    // truncated timeline: it still agrees with the end-of-run counters.
    let summary = trace.summary();
    let stats = outcome.stats();
    assert_eq!(
        summary.components.iter().map(|c| c.reactions).sum::<u64>(),
        stats.total_reactions()
    );
    assert_eq!(
        summary.edges.iter().map(|e| e.tokens_received).sum::<u64>(),
        stats.total_tokens_received()
    );
    assert_eq!(summary.dropped, trace.dropped());
    // The truncated timeline still exports valid JSON.
    json::assert_valid(&trace.to_chrome_json());
}

#[test]
fn pool_workers_record_their_scheduling_timeline() {
    let design = library::buffer_pipeline_design(8).expect("builds");
    let mode = ExecutionMode::Pool {
        workers: 2,
        quantum: 4,
    };
    let stream: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
    let outcome = traced_run(
        &design,
        &[("p0", bools(&stream))],
        mode,
        Backend::SpscRing,
        false,
    );
    let trace = outcome.trace().expect("tracing on");
    assert_eq!(trace.workers().len(), 2);
    let dispatch_records: u64 = trace
        .workers()
        .iter()
        .map(|w| {
            w.records()
                .iter()
                .filter(|r| matches!(r.event, TraceEvent::Dispatch { .. }))
                .count() as u64
        })
        .sum();
    if trace.dropped() == 0 {
        assert_eq!(
            dispatch_records,
            outcome.stats().total_dispatches(),
            "every dispatch leaves a record"
        );
    }
    json::assert_valid(&trace.to_chrome_json());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(ProptestConfig::cases_from_env(8)))]

    /// The recorder's structural invariants hold on fuzzed verified
    /// pipelines across modes, backends and capacities: merged buffers
    /// are timestamp-monotonic per component, events balance, and on the
    /// occupancy-reporting ring backend every high-water mark respects
    /// the resolved capacity.
    #[test]
    fn traced_runs_keep_their_invariants(
        n in 1usize..5,
        stream in prop::collection::vec(any::<bool>(), 0..24),
        capacity in 1usize..5,
        derived in any::<bool>(),
    ) {
        let design = library::buffer_pipeline_design(n).expect("builds");
        for mode in MODES {
            for backend in [Backend::Mpsc, Backend::SpscRing] {
                let mut deployment = if derived {
                    design.deploy_derived().expect("verified")
                } else {
                    let mut d = design.deploy().expect("verified");
                    d.set_capacity(capacity).expect("nonzero");
                    d
                };
                deployment.set_execution_mode(mode).expect("valid mode");
                deployment.set_backend(backend);
                deployment.set_tracing(true);
                deployment.feed("p0", bools(&stream));
                let outcome = deployment.run().expect("runs");
                let trace = outcome.trace().expect("tracing on");
                let context = format!(
                    "pipe{n} ({mode}, {backend}, derived {derived}, capacity {capacity})"
                );
                assert_timeline_invariants(trace, &context);
                let summary = trace.summary();
                for edge in &summary.edges {
                    if let Some(hw) = edge.high_water {
                        assert!(
                            hw <= edge.capacity,
                            "{context}: edge {} high water {hw} > capacity {}",
                            edge.signal,
                            edge.capacity
                        );
                    }
                }
                prop_assert!(summary.occupancy_within_capacity());
                // Exact aggregates agree with the end-of-run counters.
                let stats = outcome.stats();
                prop_assert_eq!(
                    summary.components.iter().map(|c| c.reactions).sum::<u64>(),
                    stats.total_reactions()
                );
                prop_assert_eq!(
                    summary.edges.iter().map(|e| e.tokens_sent).sum::<u64>(),
                    stats.total_tokens()
                );
            }
        }
    }

    /// The multirate burst pair (uneven words, derived bound > 1) also
    /// keeps the occupancy witness within its derived capacity.
    #[test]
    fn multirate_traced_runs_respect_their_derived_bounds(
        stream in prop::collection::vec(any::<bool>(), 0..18),
    ) {
        let design = library::multirate_design().expect("builds");
        for mode in MODES {
            let outcome = traced_run(
                &design,
                &[("a", bools(&stream))],
                mode,
                Backend::SpscRing,
                true,
            );
            let trace = outcome.trace().expect("tracing on");
            assert_timeline_invariants(trace, &format!("multirate {mode}"));
            let summary = trace.summary();
            for edge in &summary.edges {
                // Short streams may never move a token, leaving no
                // occupancy sample; when one exists it obeys the bound.
                if let Some(hw) = edge.high_water {
                    prop_assert!(
                        hw <= edge.capacity,
                        "multirate {}: edge {} high water {} > derived capacity {}",
                        mode, edge.signal, hw, edge.capacity
                    );
                }
                prop_assert!(edge.within_capacity() != Some(false));
            }
        }
    }
}
