//! Failure-injection tests: every layer of the stack must report faults —
//! ill-formed processes, violated clock constraints, exhausted input
//! streams, broken compositions — as typed errors, not panics, and keep its
//! state usable afterwards.

use polychrony::clocks::ClockAnalysis;
use polychrony::codegen::{seq, RuntimeError, SequentialRuntime};
use polychrony::isochron::{Design, DesignError};
use polychrony::moc::Value;
use polychrony::signal_lang::{parser, stdlib, Expr, ProcessBuilder, SignalError};
use polychrony::sim::{Drive, SimError, Simulator};

#[test]
fn defining_a_signal_twice_is_rejected() {
    let err = ProcessBuilder::new("twice")
        .define("x", Expr::var("y"))
        .define("x", Expr::var("z"))
        .build()
        .and_then(|def| def.normalize())
        .expect_err("double definition must be rejected");
    assert!(matches!(err, SignalError::MultipleDefinitions(ref n) if n.as_str() == "x"));
    assert!(err.to_string().contains('x'));
}

#[test]
fn hiding_a_never_defined_signal_is_rejected() {
    let err = ProcessBuilder::new("ghost")
        .define("x", Expr::var("y"))
        .hide(["w"])
        .build()
        .expect_err("hiding an undefined signal must be rejected");
    assert!(matches!(err, SignalError::HiddenUndefined(ref n) if n.as_str() == "w"));
}

#[test]
fn parse_errors_carry_a_position() {
    let err = parser::parse_process("process broken (? y ! x)\n  x := when\nend")
        .expect_err("syntax error");
    match err {
        SignalError::Parse { line, column, .. } => {
            assert!(line >= 2, "line {line}");
            assert!(column >= 1);
        }
        other => panic!("expected a parse error, got {other}"),
    }
}

#[test]
fn driving_an_unknown_signal_is_an_error() {
    let kernel = stdlib::filter().normalize().unwrap();
    let mut sim = Simulator::new(&kernel);
    let err = sim
        .step(&[("nosuchsignal", Drive::Present(Value::Bool(true)))])
        .expect_err("unknown signal");
    assert!(matches!(err, SimError::UnknownSignal(_)));
}

#[test]
fn violating_a_clock_constraint_is_reported_and_recoverable() {
    // In the buffer, x (the output) and y (the input) alternate: forcing y
    // present at an x-instant violates ^y = [not t].
    let kernel = stdlib::buffer().normalize().unwrap();
    let mut sim = Simulator::new(&kernel);
    // First instant: t = not s = false, so the buffer reads y.
    sim.step(&[("y", Drive::Present(Value::Bool(true)))])
        .expect("first instant reads y");
    // Second instant: t = true, the buffer emits x and must not read y.
    let err = sim
        .step(&[("y", Drive::Present(Value::Bool(false)))])
        .expect_err("y forced present at an x instant");
    assert!(
        matches!(
            err,
            SimError::ClockConstraintViolation { .. } | SimError::Contradiction { .. }
        ),
        "unexpected error {err}"
    );
    // The simulator state survives: the correct drive still works.
    let reaction = sim.step(&[("y", Drive::Absent)]).expect("recovers");
    assert!(reaction.is_present("x"), "x is emitted after recovery");
}

#[test]
fn exhausted_input_streams_stop_the_generated_code() {
    let analysis = ClockAnalysis::analyze(&stdlib::buffer().normalize().unwrap());
    let mut runtime = SequentialRuntime::new(seq::generate(&analysis));
    runtime.feed("y", [true]);
    // One full write/read cycle works, then the input queue is empty at the
    // next reading instant: the step reports the exhausted stream, exactly
    // like the generated C returning FALSE from `r_buffer_y`.
    let executed = runtime.run(10);
    assert!(executed >= 1);
    let mut saw_exhaustion = false;
    for _ in 0..4 {
        match runtime.step() {
            Ok(_) => {}
            Err(RuntimeError::InputExhausted(signal)) => {
                assert_eq!(signal.as_str(), "y");
                saw_exhaustion = true;
                break;
            }
            Err(other) => panic!("unexpected runtime error {other}"),
        }
    }
    assert!(
        saw_exhaustion,
        "the exhausted input stream must be reported"
    );
}

#[test]
fn empty_designs_and_broken_components_are_rejected() {
    assert!(matches!(
        Design::compose("empty", Vec::<polychrony::signal_lang::ProcessDef>::new()),
        Err(DesignError::Empty)
    ));
    // A component whose normalization fails propagates the Signal error.
    let broken = ProcessBuilder::new("broken")
        .define("x", Expr::var("y"))
        .define("x", Expr::var("z"))
        .build();
    // The builder itself may reject it; if not, Design::compose must.
    if let Ok(def) = broken {
        assert!(matches!(
            Design::compose("bad", [def]),
            Err(DesignError::Signal(_))
        ));
    }
}

#[test]
fn cyclic_and_ill_clocked_compositions_fail_the_criterion_not_the_api() {
    // An instantaneous dependency cycle between two endochronous-looking
    // halves: each is fine alone, the composition is rejected by the
    // acyclicity check but still returns a verdict.
    let left = ProcessBuilder::new("left")
        .define("x", Expr::var("y").add(Expr::cst(1)))
        .input("y")
        .output("x")
        .build()
        .unwrap();
    let right = ProcessBuilder::new("right")
        .define("y", Expr::var("x").add(Expr::cst(1)))
        .input("x")
        .output("y")
        .build()
        .unwrap();
    let design = Design::compose("loop", [left, right]).expect("composes");
    let verdict = design.verdict();
    assert!(!verdict.acyclic);
    assert!(!verdict.weakly_hierarchic);
    assert!(!verdict.isochronous);
}

#[test]
fn deploying_an_unverified_design_is_refused() {
    // A lone default over unrelated inputs is not hierarchic: the design
    // fails the static criterion and the deployment API refuses it.
    let loose = ProcessBuilder::new("loose")
        .define("d", Expr::var("y").default(Expr::var("z")))
        .build()
        .unwrap();
    let design = Design::compose("bad", [loose, stdlib::filter()]).expect("builds");
    let err = design.deploy().expect_err("unverified");
    assert!(matches!(err, DesignError::NotVerified(ref n) if n == "bad"));
    assert!(err.to_string().contains("bad"));
}

#[test]
fn deployment_divergence_of_a_non_isochronous_design_is_detected() {
    // The paper's consumer *without* the clock constraint `^x = [b]` on the
    // shared signal: its generated code falls back to reading x at every
    // step instead of only at the b-true instants.  Deployed asynchronously
    // it pairs the producer's tokens with the wrong instants — exactly the
    // divergence Theorem 1 rules out for verified designs — and the dynamic
    // conformance checker must report it rather than silently accept it.
    let consumer_nosync = ProcessBuilder::new("consumer_nosync")
        .synchro("v", "b")
        .define(
            "v",
            Expr::var("v")
                .pre(0)
                .add(Expr::var("x").default(Expr::cst(1))),
        )
        .inputs(["b", "x"])
        .output("v")
        .build()
        .unwrap();
    let design =
        Design::compose("unsynchronized", [stdlib::producer(), consumer_nosync]).expect("builds");
    assert!(!design.verdict().weakly_hierarchic);
    assert!(matches!(design.deploy(), Err(DesignError::NotVerified(_))));

    // Forcing the deployment anyway: the run completes, but the flows
    // diverge from the synchronous reference and the checker says so —
    // whichever channel backend carries the tokens.
    for backend in [
        polychrony::gals_rt::Backend::Mpsc,
        polychrony::gals_rt::Backend::SpscRing,
    ] {
        let mut deployment = design.deploy_unchecked();
        deployment.set_backend(backend);
        deployment.feed("a", [true, false, true, false]);
        deployment.feed("b", [false, true, false, true]);
        let outcome = deployment.run().expect("the deployment still runs");
        let report = outcome.check_conformance().expect("reference registered");
        assert!(
            !report.is_isochronous(),
            "the divergence went undetected over {backend}: {report}"
        );
        assert!(!report.mismatches().is_empty());
        assert!(report.to_string().contains("NOT conformant"));
    }
}

#[test]
fn error_messages_are_lowercase_and_name_the_culprit() {
    let errors: Vec<String> = vec![
        SignalError::MultipleDefinitions("x".into()).to_string(),
        SimError::UnknownSignal("y".into()).to_string(),
        RuntimeError::InputExhausted("z".into()).to_string(),
        DesignError::Empty.to_string(),
        polychrony::gals_rt::DeployError::ZeroCapacity(None).to_string(),
        polychrony::gals_rt::DeployError::ZeroCapacity(Some("w".into())).to_string(),
    ];
    for message in errors {
        let first = message.chars().next().unwrap();
        assert!(
            first.is_lowercase() || !first.is_alphabetic(),
            "error messages start lowercase: {message}"
        );
        assert!(
            !message.ends_with('.'),
            "no trailing punctuation: {message}"
        );
    }
}
