//! End-to-end dynamic isochrony: every weakly hierarchic composition
//! reachable from `signal_lang::stdlib` is deployed on OS threads with
//! bounded channels, and the observed flows must equal the synchronous
//! reference replay — Theorem 1 as an executable test (the conformance
//! checker of `gals_rt`).
//!
//! Every scenario runs over **both** channel backends and under **both**
//! execution modes — dedicated threads and a 2-worker work-stealing pool
//! (fewer workers than components for every multi-component design), so
//! the cooperative scheduler must observe the same synchronous flows as
//! the blocking one.

use polychrony::gals_rt::{
    Backend, CapacityRange, DeployError, Deployment, DeploymentOutcome, ExecutionMode, MachineKind,
    StopReason,
};
use polychrony::isochron::{design::chain_of_pairs, library, Design};
use polychrony::moc::Value;

/// The execution modes every scenario is replayed under: the classic
/// dedicated-thread mode and a deliberately undersized pool (2 workers,
/// small quantum) that forces component multiplexing and stealing.
const MODES: [ExecutionMode; 2] = [
    ExecutionMode::ThreadPerComponent,
    ExecutionMode::Pool {
        workers: 2,
        quantum: 4,
    },
];

/// Deploys the design with every feed applied, at the given channel
/// capacity, over **both** built-in channel backends, under **both**
/// execution modes, with **both** machine kinds (the interpreter and the
/// slot-indexed compiled runtime); asserts the conformance verdict for
/// each of the eight runs, and returns the last outcome — Theorem 1's
/// isochrony is transport-, scheduler- and execution-strategy-agnostic,
/// so every combination must observe the synchronous flows.
fn assert_conformant(
    design: &Design,
    feeds: &[(&str, Vec<Value>)],
    capacity: usize,
) -> DeploymentOutcome {
    // The release-mode stress lane sets GALS_TRACE_DIR: every run is then
    // traced, and a failing interleaving leaves its timeline behind as the
    // repro artifact.
    let trace_dir = std::env::var_os("GALS_TRACE_DIR");
    let mut outcomes = Vec::new();
    for kind in [MachineKind::Interpreted, MachineKind::Compiled] {
        for mode in MODES {
            for backend in [Backend::Mpsc, Backend::SpscRing] {
                let mut deployment: Deployment =
                    design.deploy_with(kind).expect("the design is verified");
                assert_eq!(deployment.machine_kind(), Some(kind));
                deployment.set_execution_mode(mode).expect("valid mode");
                deployment.set_backend(backend);
                deployment.set_capacity(capacity).expect("nonzero");
                deployment.set_tracing(trace_dir.is_some());
                for (signal, values) in feeds {
                    deployment.feed(*signal, values.iter().copied());
                }
                let outcome = deployment.run().expect("the deployment runs");
                let stats = outcome.stats();
                assert_eq!(stats.machine_kind, Some(kind));
                // Token conservation: a token is counted sent when it enters
                // a channel and received when it leaves, so the receiving
                // side can never lead (a component stopping early only
                // strands tokens, leaving the sent side ahead).
                assert!(
                    stats.total_tokens_received() <= stats.total_tokens(),
                    "{} ({kind}, {mode}, backend {backend}, capacity {capacity}): received \
                     more tokens than were sent\nstats:\n{stats}",
                    design.name()
                );
                let report = outcome.check_conformance().expect("reference registered");
                if !report.is_isochronous() {
                    let saved = trace_dir.as_ref().and_then(|dir| {
                        let trace = outcome.trace()?;
                        let stem =
                            format!("{}-{kind}-{mode}-{backend}-cap{capacity}", design.name())
                                .replace(|c: char| !c.is_ascii_alphanumeric() && c != '-', "_");
                        let file = std::path::Path::new(dir).join(format!("{stem}.trace.json"));
                        std::fs::create_dir_all(dir).ok()?;
                        std::fs::write(&file, trace.to_chrome_json()).ok()?;
                        Some(file)
                    });
                    panic!(
                        "{} ({kind}, {mode}, backend {backend}, capacity {capacity}): {report}\n\
                         stats:\n{}\ntrace: {}",
                        design.name(),
                        outcome.stats(),
                        saved
                            .map(|p| p.display().to_string())
                            .unwrap_or_else(|| "not captured (set GALS_TRACE_DIR)".into())
                    );
                }
                outcomes.push(outcome);
            }
        }
    }
    let reference = outcomes[0].flows().clone();
    for outcome in &outcomes[1..] {
        assert_eq!(
            outcome.flows(),
            &reference,
            "{} (capacity {capacity}): a kind/mode/backend combination observed different flows",
            design.name()
        );
    }
    outcomes.pop().expect("eight outcomes")
}

fn bools(values: &[bool]) -> Vec<Value> {
    values.iter().map(|&b| Value::Bool(b)).collect()
}

fn ints(values: impl IntoIterator<Item = i64>) -> Vec<Value> {
    values.into_iter().map(Value::Int).collect()
}

#[test]
fn producer_consumer_conforms_at_every_capacity() {
    let design = library::producer_consumer_design().unwrap();
    let feeds = [
        (
            "a",
            bools(&[true, false, false, true, false, true, true, false]),
        ),
        (
            "b",
            bools(&[false, true, true, false, true, false, false, true]),
        ),
    ];
    for capacity in [1usize, 4, 64] {
        let outcome = assert_conformant(&design, &feeds, capacity);
        assert_eq!(
            outcome
                .flow("v")
                .iter()
                .map(|v| v.as_int().unwrap())
                .collect::<Vec<_>>(),
            vec![1, 2, 4, 5, 8, 9, 10, 14]
        );
    }
}

#[test]
fn filter_merge_conforms() {
    let design = library::filter_merge_design().unwrap();
    let feeds = [
        ("y", bools(&[true, false, false, true])),
        ("c", bools(&[false, true, true, false])),
        ("z", bools(&[true, false])),
    ];
    for capacity in [1usize, 16] {
        let outcome = assert_conformant(&design, &feeds, capacity);
        // d = z1, x1, x2, z2 = 1 1 1 0 as in Section 1 of the paper.
        assert_eq!(
            outcome.flow("d"),
            bools(&[true, true, true, false]).as_slice()
        );
    }
}

#[test]
fn the_ltta_deploys_four_components_on_four_threads() {
    let design = library::ltta_design().unwrap();
    assert_eq!(design.components().len(), 4);
    let feeds = [
        ("xw", ints(1..=8)),
        ("cw", bools(&[true; 48])),
        ("cr", bools(&[true; 48])),
    ];
    for capacity in [1usize, 16] {
        let outcome = assert_conformant(&design, &feeds, capacity);
        // One worker (hence one OS thread) per device.
        assert_eq!(outcome.stats().components.len(), 4);
        // The alternating-bit protocol delivered fresh values end to end.
        let xr = outcome.flow("xr");
        assert!(
            !xr.is_empty(),
            "nothing crossed the bus:\n{}",
            outcome.stats()
        );
    }
}

#[test]
fn a_single_component_design_deploys_trivially() {
    let design = library::buffer_design().unwrap();
    let feeds = [("y", bools(&[true, false, true]))];
    let outcome = assert_conformant(&design, &feeds, 1);
    assert_eq!(outcome.flow("x"), bools(&[true, false, true]).as_slice());
    assert_eq!(outcome.stats().channels, 0);
}

#[test]
fn a_buffer_pipeline_conforms_and_preserves_the_stream() {
    let stream = [true, false, true, true, false, false, true, false];
    // n = 8 puts four times as many components as pool workers on the
    // scheduler: the 2-worker pool must still observe the synchronous
    // flows.
    for n in [2usize, 4, 8] {
        let design = library::buffer_pipeline_design(n).expect("builds");
        assert!(design.is_weakly_hierarchic(), "{}", design.verdict());
        let feeds = [("p0", bools(&stream))];
        for capacity in [1usize, 16] {
            let outcome = assert_conformant(&design, &feeds, capacity);
            assert_eq!(outcome.stats().components.len(), n);
            // The pipeline is a FIFO: the last stage re-emits the stream.
            assert_eq!(
                outcome.flow(&format!("p{n}")),
                bools(&stream).as_slice(),
                "pipe{n} capacity {capacity}"
            );
        }
    }
}

#[test]
fn a_chain_of_pairs_deploys_every_pair_in_parallel() {
    let design = Design::compose("chain2", chain_of_pairs(2)).expect("builds");
    assert_eq!(design.components().len(), 4);
    let a = bools(&[true, false, true, false, true]);
    let b = bools(&[false, true, false, true, false]);
    let feeds = [("a0", a.clone()), ("b0", b.clone()), ("a1", a), ("b1", b)];
    let outcome = assert_conformant(&design, &feeds, 4);
    assert_eq!(outcome.stats().components.len(), 4);
    for pair in 0..2 {
        assert_eq!(
            outcome
                .flow(&format!("v{pair}"))
                .iter()
                .map(|v| v.as_int().unwrap())
                .collect::<Vec<_>>(),
            vec![1, 2, 3, 5, 6]
        );
    }
}

#[test]
fn zero_channel_capacities_are_rejected_with_a_typed_error() {
    // Regression: a zero capacity used to be silently altered instead of
    // rejected; a rendezvous channel would deadlock the worker loop, so
    // the API must say no.
    let design = library::producer_consumer_design().unwrap();
    let mut deployment = design.deploy().unwrap();
    assert!(matches!(
        deployment.set_capacity(0),
        Err(DeployError::ZeroCapacity(None))
    ));
    assert!(matches!(
        deployment.set_channel_capacity("x", 0),
        Err(DeployError::ZeroCapacity(Some(ref n))) if n.as_str() == "x"
    ));
    // The deployment survives the refusals and still runs (and conforms)
    // with the untouched policy.
    deployment.feed("a", [true, false, true]);
    deployment.feed("b", [false, true, false]);
    let outcome = deployment.run().expect("still runs");
    assert_eq!(outcome.stats().capacity, CapacityRange::exactly(1));
    let report = outcome.check_conformance().expect("reference registered");
    assert!(report.is_isochronous(), "{report}");
}

#[test]
fn the_pool_records_its_scheduling_counters() {
    // 8 verified components on 2 pool workers: the run must complete on
    // exactly 2 OS threads, report the pool mode, and account one
    // dispatch per component at minimum — while still conforming.
    let design = library::buffer_pipeline_design(8).expect("builds");
    let mut deployment = design.deploy().expect("verified");
    let mode = ExecutionMode::Pool {
        workers: 2,
        quantum: 4,
    };
    deployment.set_execution_mode(mode).expect("valid mode");
    deployment.feed("p0", (0..16).map(|i| Value::Bool(i % 2 == 0)));
    let outcome = deployment.run().expect("runs");
    let stats = outcome.stats();
    assert_eq!(stats.mode, mode);
    assert_eq!(stats.components.len(), 8);
    assert_eq!(stats.pool_workers.len(), 2);
    assert!(
        stats.total_dispatches() >= 8,
        "every component was dispatched at least once:\n{stats}"
    );
    let report = outcome.check_conformance().expect("reference registered");
    assert!(report.is_isochronous(), "{report}");
}

#[test]
fn backpressure_is_observable_at_capacity_one() {
    // With a one-place channel and a consumer that asks late, the producer
    // must block: the counters expose it.
    let design = library::producer_consumer_design().unwrap();
    let mut deployment = design.deploy().unwrap();
    deployment.set_capacity(1).expect("nonzero");
    // Many producer tokens early, consumer pulls late.
    deployment.feed("a", [false, false, false, false, false, false]);
    deployment.feed("b", [true, true, true, true, true, true]);
    let outcome = deployment.run().unwrap();
    let stats = outcome.stats();
    assert_eq!(stats.capacity, CapacityRange::exactly(1));
    assert_eq!(stats.components[1].tokens_received, 6);
    assert_eq!(
        stats.components[0].stop,
        StopReason::EnvironmentExhausted("a".into())
    );
    let report = outcome.check_conformance().unwrap();
    assert!(report.is_isochronous(), "{report}");
}

#[test]
fn clean_runs_exchange_exactly_as_many_tokens_as_they_send() {
    // On a drain-complete run — every consumer keeps reading its channels
    // until the producers close — "tokens exchanged" is one number:
    // what was sent is what was received.  The pipelines and the
    // producer/consumer pair drain completely (each consumer's stop is
    // observing its upstream close, or its pacing stream and the channel
    // run dry together), so sent == received must hold exactly, per run,
    // under every mode x backend combination.
    type Scenario = (Design, Vec<(&'static str, Vec<Value>)>);
    let scenarios: Vec<Scenario> = vec![
        (
            library::producer_consumer_design().unwrap(),
            vec![
                (
                    "a",
                    bools(&[true, false, false, true, false, true, true, false]),
                ),
                (
                    "b",
                    bools(&[false, true, true, false, true, false, false, true]),
                ),
            ],
        ),
        (
            library::buffer_pipeline_design(4).unwrap(),
            vec![("p0", bools(&[true, false, true, true, false, false]))],
        ),
    ];
    for (design, feeds) in &scenarios {
        for mode in MODES {
            for backend in [Backend::Mpsc, Backend::SpscRing] {
                let mut deployment = design.deploy().expect("verified");
                deployment.set_execution_mode(mode).expect("valid mode");
                deployment.set_backend(backend);
                for (signal, values) in feeds {
                    deployment.feed(*signal, values.iter().copied());
                }
                let outcome = deployment.run().expect("runs");
                let stats = outcome.stats();
                assert_eq!(
                    stats.total_tokens(),
                    stats.total_tokens_received(),
                    "{} ({mode}, {backend}): tokens stranded in a channel\n{stats}",
                    design.name()
                );
            }
        }
    }
}

#[test]
fn derived_capacities_conform_across_modes_and_backends() {
    // The capacity-derivation story on the stdlib designs: every edge
    // gets a clock-derived bound and every (mode x backend) combination
    // still observes the synchronous flows — the hand-tuned capacity knob
    // replaced by an artifact of the verification, with no loss of
    // conformance.
    use polychrony::gals_rt::{CapacitySource, ChannelSizing};
    type Scenario = (Design, Vec<(&'static str, Vec<Value>)>);
    let scenarios: Vec<Scenario> = vec![
        (
            library::producer_consumer_design().unwrap(),
            vec![
                ("a", bools(&[true, false, false, true, false, true])),
                ("b", bools(&[false, true, true, false, true, false])),
            ],
        ),
        (
            library::buffer_pipeline_design(4).unwrap(),
            vec![("p0", bools(&[true, false, true, true, false, false]))],
        ),
        (
            library::ltta_design().unwrap(),
            vec![
                ("xw", ints(1..=6)),
                ("cw", bools(&[true; 36])),
                ("cr", bools(&[true; 36])),
            ],
        ),
    ];
    for (design, feeds) in &scenarios {
        for kind in [MachineKind::Interpreted, MachineKind::Compiled] {
            for mode in MODES {
                for backend in [Backend::Mpsc, Backend::SpscRing] {
                    let mut deployment = design.deploy_derived_with(kind).expect("verified design");
                    deployment.set_execution_mode(mode).expect("valid mode");
                    deployment.set_backend(backend);
                    for (signal, values) in feeds {
                        deployment.feed(*signal, values.iter().copied());
                    }
                    let outcome = deployment.run().expect("the deployment runs");
                    let stats = outcome.stats();
                    assert_eq!(stats.sizing, ChannelSizing::Derived);
                    for edge in &stats.edges {
                        assert_eq!(
                            edge.source,
                            CapacitySource::Derived,
                            "{}: {}",
                            design.name(),
                            edge.signal
                        );
                        assert!(edge.derivation.is_some());
                    }
                    for component in &stats.components {
                        assert_ne!(component.stop, StopReason::Deadlocked);
                    }
                    let report = outcome.check_conformance().expect("reference registered");
                    assert!(
                        report.is_isochronous(),
                        "{} ({kind}, {mode}, {backend}): {report}",
                        design.name()
                    );
                }
            }
        }
    }
}
