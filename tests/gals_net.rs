//! Cross-process GALS: the wire protocol, the partitioner and the
//! socket/shared-file transports of `gals-net`.
//!
//! The contract under test is Theorem 1's medium-independence made
//! executable: frames survive arbitrary re-chunking of the byte stream,
//! every transport observes the ring's close-then-drain semantics, a cut
//! edge's flow-control window is exactly the derived capacity bound, a
//! partitioned run conforms to the synchronous reference of the whole
//! design, and a crashed-and-restarted sender resumes without loss or
//! duplication.  (CI's release stress lane re-runs the reconnect test
//! repeatedly with `GALS_TRACE_DIR` set.)

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use polychrony::gals_net::runner::run_partition;
use polychrony::gals_net::{
    merged_conformance, plan, plan_with_overrides, Frame, FrameReader, MergedStats, NetReceiver,
    NetSender, NetTransport, RetryPolicy, ShmTransport, UdsLinks,
};
use polychrony::gals_rt::{RingTransport, TokenRx, TokenTx, Transport, TryRecvError, TrySendError};
use polychrony::isochron::library;
use polychrony::moc::{Name, Value};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gals-net-it-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Builds one frame of each kind from drawn words, deterministically.
fn frame_from(kind: u8, a: u64, b: u64, flag: bool) -> Frame {
    match kind % 5 {
        0 => Frame::Hello {
            version: (a % 7) as u16,
            signal: format!("sig{}", b % 100),
            window: a,
            start_seq: b,
        },
        1 => Frame::HelloAck {
            next_expected: a,
            consumed: b,
        },
        2 => Frame::Data {
            seq: a,
            value: if flag {
                Value::Bool(b.is_multiple_of(2))
            } else {
                Value::Int(b as i64)
            },
        },
        3 => Frame::Ack { consumed: a },
        _ => Frame::Close { final_seq: a },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of frames, encoded back to back and delivered in
    /// arbitrary-sized chunks (including single bytes and chunks spanning
    /// frame boundaries), decodes to exactly the sent sequence.
    #[test]
    fn frames_survive_arbitrary_rechunking(
        kinds in prop::collection::vec(any::<u8>(), 1..10),
        words in prop::collection::vec(any::<u64>(), 20..21),
        flags in prop::collection::vec(any::<bool>(), 10..11),
        chunk in 1usize..23,
    ) {
        let frames: Vec<Frame> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| frame_from(k, words[i % words.len()], words[(i + 7) % words.len()], flags[i % flags.len()]))
            .collect();
        let mut bytes = Vec::new();
        for frame in &frames {
            bytes.extend_from_slice(&frame.encode());
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for piece in bytes.chunks(chunk) {
            reader.push(piece);
            while let Some(frame) = reader.next_frame().expect("well-formed bytes") {
                decoded.push(frame);
            }
        }
        prop_assert!(reader.at_boundary(), "stream must end on a frame boundary");
        prop_assert_eq!(decoded, frames);
    }
}

/// Every transport — the in-process ring, the shared-file ring and the
/// socket speaking the wire protocol — observes the same close-then-drain
/// sequence: buffered tokens survive the producer's close, and only the
/// drained buffer reports the channel closed.
#[test]
fn every_transport_observes_close_then_drain() {
    let transports: Vec<Box<dyn Transport>> = vec![
        Box::new(RingTransport),
        Box::new(ShmTransport::new().expect("temp dir")),
        Box::new(NetTransport::new().expect("temp dir")),
    ];
    for transport in transports {
        let name = transport.name();
        let (tx, rx) = transport.open(4).expect("pair opens");
        for i in 0..3 {
            tx.send(Value::Int(i)).expect("receiver alive");
        }
        drop(tx);
        let mut observed = Vec::new();
        while let Ok(value) = rx.recv() {
            observed.push(value);
        }
        assert_eq!(
            observed,
            (0..3).map(Value::Int).collect::<Vec<_>>(),
            "{name}: buffered tokens must survive the close"
        );
        assert_eq!(
            rx.try_recv(),
            Err(TryRecvError::Closed),
            "{name}: a drained closed channel stays closed"
        );
    }
}

/// The flow-control window of every cut edge is exactly the capacity
/// bound the clock calculus derived for it — the acceptance criterion of
/// the distributed subsystem, asserted directly.
#[test]
fn every_cut_window_equals_the_derived_bound() {
    let design = library::buffer_pipeline_design(4).expect("builds");
    let analysis = design.capacity_analysis().expect("verified");
    let plan = plan(&design, &[0, 0, 1, 1]).expect("plans");
    assert_eq!(plan.processes(), 2);
    assert!(!plan.cuts().is_empty(), "the assignment cuts an edge");
    for cut in plan.cuts() {
        let derived = analysis.bound_for(&cut.signal).expect("bounded edge");
        assert_eq!(
            cut.window, derived.bound,
            "cut {}: window must equal the derived bound",
            cut.signal
        );
    }
    // The same override-beats-derivation rule as the in-process policy.
    let mut overrides = BTreeMap::new();
    let cut_signal = plan.cuts()[0].signal.clone();
    overrides.insert(cut_signal.clone(), 7usize);
    let overridden = plan_with_overrides(&design, &[0, 0, 1, 1], &overrides).expect("plans");
    let cut = overridden
        .cuts()
        .iter()
        .find(|c| c.signal == cut_signal)
        .expect("still cut");
    assert_eq!(
        cut.window, 7,
        "an explicit override wins over the derivation"
    );
}

/// A four-stage pipeline split across two partitions over real Unix
/// domain sockets: the merged flows pass the end-to-end conformance
/// check against the synchronous reference of the whole design, and the
/// cut signal's two observations agree.
#[test]
fn a_partitioned_pipeline_conforms_over_real_sockets() {
    let design = library::buffer_pipeline_design(4).expect("builds");
    let plan = plan(&design, &[0, 0, 1, 1]).expect("plans");
    let stream = [true, false, true, true, false, false, true, false];
    let mut feeds: BTreeMap<Name, Vec<Value>> = BTreeMap::new();
    feeds.insert(
        Name::from("p0"),
        stream.iter().map(|&b| Value::Bool(b)).collect(),
    );
    let dir = temp_dir("partition");
    let reports: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = (0..plan.processes())
            .map(|process| {
                let (design, plan, feeds, dir) = (&design, &plan, &feeds, &dir);
                scope.spawn(move || {
                    let links = UdsLinks::new(dir);
                    run_partition(design, plan, process, &links, feeds)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition thread").expect("partition runs"))
            .collect()
    });
    let merged = MergedStats::merge(reports).expect("flows agree on the cut");
    assert_eq!(merged.reports.len(), 2);
    let report = merged_conformance(&design, &feeds, &merged.flows);
    assert!(report.is_isochronous(), "{report}");
    // The pipeline is a FIFO: the last stage re-emits the stream, across
    // the process boundary.
    assert_eq!(
        merged.flows.get(&Name::from("p4")).map(Vec::as_slice),
        Some(
            stream
                .iter()
                .map(|&b| Value::Bool(b))
                .collect::<Vec<_>>()
                .as_slice()
        )
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The reconnect path: a sender dies mid-stream without the closing
/// handshake (the wire's `SIGKILL`), a fresh sender replays the stream
/// from the beginning, and the receiver still observes every token
/// exactly once — idempotent resume via the per-edge sequence numbers.
#[test]
fn a_restarted_sender_resumes_without_loss_or_duplication() {
    let dir = temp_dir("resume");
    let path = dir.join("x.sock");
    let rx = NetReceiver::bind(&path, "x", 3).expect("binds");
    let tx = NetSender::connect(&path, "x", 3, RetryPolicy::default()).expect("dials");
    let stream: Vec<Value> = (0..12).map(Value::Int).collect();
    // First life: a prefix is sent, part of it consumed, then the sender
    // vanishes without a Close frame.
    for value in &stream[..3] {
        tx.send(*value).expect("receiver alive");
    }
    assert_eq!(rx.recv(), Ok(stream[0]));
    assert_eq!(rx.recv(), Ok(stream[1]));
    tx.abandon();
    assert_eq!(tx.try_send(Value::Int(99)), Err(TrySendError::Closed));
    drop(tx);
    // Second life: the restarted producer replays the whole stream; the
    // handshake watermark makes the overlap idempotent.  The consumer
    // drains concurrently — the credit window (3) is far smaller than the
    // stream, so the producer must block on it repeatedly.
    let tx2 = NetSender::connect(&path, "x", 3, RetryPolicy::default()).expect("redials");
    let replay = stream.clone();
    let producer = thread::spawn(move || {
        for value in &replay {
            tx2.send(*value).expect("receiver alive");
        }
    });
    let mut rest = vec![stream[0], stream[1]];
    while let Ok(value) = rx.recv() {
        rest.push(value);
    }
    producer.join().expect("producer thread");
    assert_eq!(rest, stream, "no loss, no duplication, order preserved");
    assert!(rx.fault().is_none(), "clean resume leaves no fault");
    drop(rx);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A partition plan refuses an out-of-range process and a short
/// assignment with typed errors, and reports its cut topology.
#[test]
fn malformed_partition_requests_are_typed_errors() {
    let design = library::buffer_pipeline_design(2).expect("builds");
    let err = plan(&design, &[0]).expect_err("wrong length");
    assert!(err.to_string().contains("assignment"), "{err}");
    let err = plan(&design, &[0, 2]).expect_err("gap in process ids");
    assert!(err.to_string().contains("owns no component"), "{err}");
}
