//! Differential and property-based tests on randomly generated endochronous
//! processes.
//!
//! The generator (`signal_lang::generate`) builds processes that are
//! endochronous *by construction*; these tests check that every stage of
//! the pipeline agrees:
//!
//! * the clock calculus indeed reports them endochronous;
//! * the generated step program produces the same flows as the reference
//!   synchronous interpreter (differential testing of the code generator);
//! * disjoint compositions of generated components satisfy the static
//!   weak-hierarchy criterion and, for small instances, the explicit
//!   weak-endochrony exploration agrees (Theorem 1 cross-check).

use std::collections::BTreeMap;

use polychrony::analysis::WeakEndochronyReport;
use polychrony::clocks::ClockAnalysis;
use polychrony::codegen::{seq, SequentialRuntime};
use polychrony::isochron::Design;
use polychrony::moc::Value;
use polychrony::signal_lang::generate;
use polychrony::sim::{Drive, Simulator};
use proptest::prelude::*;

/// Runs the reference interpreter on a generated process for the given
/// input flow and returns the per-output flows.
fn interpret_flows(
    def: &polychrony::signal_lang::ProcessDef,
    flow: &[bool],
) -> BTreeMap<String, Vec<Value>> {
    let kernel = def.normalize().expect("generated processes normalize");
    let input = generate::input_of(def).clone();
    let mut sim = Simulator::new(&kernel);
    let mut flows: BTreeMap<String, Vec<Value>> = BTreeMap::new();
    for &v in flow {
        let reaction = sim
            .step(&[(input.as_str(), Drive::Present(Value::Bool(v)))])
            .expect("generated processes react deterministically");
        for (name, value) in reaction.events() {
            if kernel.is_output(name.as_str()) {
                flows.entry(name.to_string()).or_default().push(value);
            }
        }
    }
    flows
}

/// Runs the generated step program on the same flow and returns the
/// per-output flows.
fn compiled_flows(
    def: &polychrony::signal_lang::ProcessDef,
    flow: &[bool],
) -> BTreeMap<String, Vec<Value>> {
    let kernel = def.normalize().expect("generated processes normalize");
    let analysis = ClockAnalysis::analyze(&kernel);
    let program = seq::generate(&analysis);
    let mut runtime = SequentialRuntime::new(program);
    let input = generate::input_of(def).clone();
    runtime.feed(input.as_str(), flow.iter().copied());
    runtime.run(flow.len() + 1);
    let mut flows = BTreeMap::new();
    for name in kernel.outputs() {
        let values = runtime.output(name.as_str()).to_vec();
        if !values.is_empty() {
            flows.insert(name.to_string(), values);
        }
    }
    flows
}

#[test]
fn generated_processes_are_endochronous() {
    for seed in 0..30u64 {
        let def = generate::endochronous("gen", 10, seed);
        let analysis = ClockAnalysis::analyze(&def.normalize().unwrap());
        assert!(
            analysis.is_endochronous(),
            "seed {seed}: {}\n{}",
            analysis.summary(),
            analysis.hierarchy().render()
        );
    }
}

#[test]
fn generated_compositions_satisfy_the_static_criterion() {
    for seed in 0..10u64 {
        let components = generate::component_batch(4, 6, seed);
        let design = Design::compose(format!("batch{seed}"), components).expect("builds");
        let verdict = design.verdict();
        assert!(verdict.components_endochronous, "seed {seed}: {verdict}");
        assert!(verdict.weakly_hierarchic, "seed {seed}: {verdict}");
        assert_eq!(verdict.roots, 4, "seed {seed}: {verdict}");
        assert!(!verdict.endochronous, "seed {seed}: {verdict}");
    }
}

#[test]
fn small_generated_compositions_are_weakly_endochronous() {
    // Theorem 1 cross-check: the static criterion accepts these designs, and
    // the explicit state-space exploration confirms weak endochrony.
    for seed in 0..5u64 {
        let components = generate::component_batch(2, 3, seed);
        let mut builder = polychrony::signal_lang::ProcessBuilder::new("pair");
        for def in &components {
            builder = builder.include(def);
        }
        let composed = builder.build().unwrap().normalize().unwrap();
        let report = WeakEndochronyReport::check(&composed, 200_000);
        assert!(report.is_weakly_endochronous(), "seed {seed}: {report}");
        assert!(report.is_non_blocking(), "seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pretty-printing a generated process and parsing it back yields a
    /// process with the same interface, the same kernel size and the same
    /// analysis verdicts (parser/printer round trip on arbitrary shapes).
    #[test]
    fn printed_processes_parse_back(seed in 0u64..500, size in 1usize..12) {
        use polychrony::signal_lang::{parser, printer};
        let def = generate::endochronous("gen", size, seed);
        let text = printer::render(&def);
        let reparsed = parser::parse_process(&text).expect("printed text parses");
        prop_assert_eq!(&reparsed.name, &def.name);
        prop_assert_eq!(&reparsed.inputs, &def.inputs);
        prop_assert_eq!(&reparsed.outputs, &def.outputs);
        let original = def.normalize().expect("normalizes");
        let roundtrip = reparsed.normalize().expect("normalizes");
        prop_assert_eq!(original.equations().len(), roundtrip.equations().len());
        let original_verdicts = ClockAnalysis::analyze(&original).summary();
        let roundtrip_verdicts = ClockAnalysis::analyze(&roundtrip).summary();
        prop_assert_eq!(
            original_verdicts.split_once(':').map(|(_, v)| v.to_string()),
            roundtrip_verdicts.split_once(':').map(|(_, v)| v.to_string())
        );
    }

    /// The C emitter produces structurally well-formed text for arbitrary
    /// generated processes (every brace closed, one transition function).
    #[test]
    fn emitted_c_is_structurally_well_formed(seed in 0u64..500, size in 1usize..12) {
        use polychrony::codegen::emit;
        let def = generate::endochronous("gen", size, seed);
        let kernel = def.normalize().expect("normalizes");
        let analysis = ClockAnalysis::analyze(&kernel);
        let c = emit::emit_c(&seq::generate(&analysis));
        prop_assert!(c.contains("bool gen_iterate()"));
        prop_assert_eq!(c.matches('{').count(), c.matches('}').count());
    }

    /// The generated sequential code computes the same output flows as the
    /// reference interpreter, for random process shapes and input flows.
    #[test]
    fn compiled_code_matches_the_interpreter(
        seed in 0u64..500,
        size in 1usize..12,
        flow in prop::collection::vec(any::<bool>(), 1..24),
    ) {
        let def = generate::endochronous("gen", size, seed);
        let interpreted = interpret_flows(&def, &flow);
        let compiled = compiled_flows(&def, &flow);
        prop_assert_eq!(interpreted, compiled, "seed {} size {}", seed, size);
    }

    /// Endochrony in practice: the flows produced by a generated process
    /// depend only on the input flow, not on when the inputs arrive — here,
    /// interleaving silent instants between input arrivals.
    #[test]
    fn generated_outputs_are_insensitive_to_input_pacing(
        seed in 0u64..500,
        size in 1usize..10,
        flow in prop::collection::vec(any::<bool>(), 1..16),
        gaps in prop::collection::vec(0usize..3, 1..16),
    ) {
        let def = generate::endochronous("gen", size, seed);
        let kernel = def.normalize().unwrap();
        let input = generate::input_of(&def).clone();

        let dense = interpret_flows(&def, &flow);

        // Same flow, but with silent (all-absent) instants inserted: the
        // output flows must be unchanged.
        let mut sim = Simulator::new(&kernel);
        let mut sparse: BTreeMap<String, Vec<Value>> = BTreeMap::new();
        for (i, &v) in flow.iter().enumerate() {
            let pause = gaps.get(i % gaps.len()).copied().unwrap_or(0);
            for _ in 0..pause {
                let silent = sim.step(&[(input.as_str(), Drive::Absent)]).expect("silent step");
                prop_assert!(silent.is_silent());
            }
            let reaction = sim
                .step(&[(input.as_str(), Drive::Present(Value::Bool(v)))])
                .expect("reacts");
            for (name, value) in reaction.events() {
                if kernel.is_output(name.as_str()) {
                    sparse.entry(name.to_string()).or_default().push(value);
                }
            }
        }
        prop_assert_eq!(dense, sparse);
    }
}
