//! Integration tests of the compositional methodology: the static
//! weak-hierarchy criterion agrees with the (costly) weak-endochrony model
//! checking, and Theorem 1's isochrony conclusion is observable on
//! executions.

use polychrony::analysis::{RootInvariants, WeakEndochronyReport};
use polychrony::isochron::{design::chain_of_pairs, isochrony, library, Design};

/// The static criterion and the model checker agree on the paper's designs.
#[test]
fn static_criterion_agrees_with_model_checking() {
    for design in [
        library::producer_consumer_design().unwrap(),
        library::filter_merge_design().unwrap(),
        library::buffer_design().unwrap(),
    ] {
        let static_verdict = design.verdict().weakly_hierarchic;
        let report = WeakEndochronyReport::check(design.composition(), 20_000);
        assert!(
            !static_verdict || report.is_weakly_endochronous(),
            "{}: static criterion accepted but model checking found: {report}",
            design.name()
        );
    }
}

/// The root invariants of Section 4.1 hold for the weakly hierarchic
/// designs with several roots.
#[test]
fn root_invariants_hold_for_weakly_hierarchic_designs() {
    for design in [
        library::producer_consumer_design().unwrap(),
        library::filter_merge_design().unwrap(),
    ] {
        let invariants = RootInvariants::check(design.composition(), 20_000);
        assert!(invariants.all_hold(), "{}:\n{invariants}", design.name());
    }
}

/// Theorem 1 observed: the synchronous and asynchronous executions of the
/// producer/consumer design produce the same flows.
#[test]
fn theorem_1_isochrony_is_observable() {
    let design = library::producer_consumer_design().unwrap();
    assert!(design.verdict().isochronous);
    let a = [true, false, false, true, false, true, true, false];
    let b = [false, true, true, false, true, false, false, true];
    for seed in [2u64, 99, 2024] {
        let obs = isochrony::observe_producer_consumer(&design, &a, &b, seed);
        assert!(obs.flows_match(), "mismatch: {:?}", obs.mismatches());
    }
}

/// Incremental composition (the paper's `main2`): adding components one by
/// one keeps the criterion checkable and satisfied.
#[test]
fn incremental_composition_scales() {
    for n in [1usize, 2, 4] {
        let design = Design::compose(format!("chain{n}"), chain_of_pairs(n)).unwrap();
        let v = design.verdict();
        assert!(v.weakly_hierarchic, "chain of {n} pairs:\n{v}");
        assert_eq!(v.roots, 2 * n);
        assert!(!v.endochronous || n == 0);
    }
}

/// Every component of every paper design generates executable code whose C
/// emission is syntactically balanced.
#[test]
fn every_component_generates_code() {
    for design in [
        library::producer_consumer_design().unwrap(),
        library::filter_merge_design().unwrap(),
        library::ltta_design().unwrap(),
        library::buffer_design().unwrap(),
    ] {
        for component in design.components() {
            let c = component.emit_c();
            assert!(c.contains(&format!("bool {}_iterate()", component.name())));
            assert_eq!(c.matches('{').count(), c.matches('}').count());
        }
    }
}
