//! Integration tests reproducing the worked examples of the paper
//! (experiments E1, E2, E5 of DESIGN.md).

use polychrony::clocks::ClockAnalysis;
use polychrony::moc::{Behavior, Stream, Tag, Value};
use polychrony::signal_lang::stdlib;
use polychrony::sim::{Drive, Simulator};

/// E1 — Section 1: `filter` emits x exactly when the value of y changes,
/// and it is endochronous: two flow-equivalent inputs produce
/// clock-equivalent behaviors.
#[test]
fn e1_filter_is_endochronous() {
    let kernel = stdlib::filter().normalize().unwrap();
    let analysis = ClockAnalysis::analyze(&kernel);
    assert!(analysis.is_endochronous());

    // Execute the filter on the paper's input flow with two different
    // timings of the same values and compare the results.
    let flow = [true, false, false, true];
    let mut behaviors = Vec::new();
    for gap in [1u64, 3] {
        let mut sim = Simulator::new(&kernel);
        let mut behavior = Behavior::empty_on(["x", "y"]);
        let mut tag = 0u64;
        for v in flow {
            let r = sim.step(&[("y", Drive::Present(Value::Bool(v)))]).unwrap();
            behavior.insert_event("y", Tag::new(tag), Value::Bool(v));
            if let Some(x) = r.value("x") {
                behavior.insert_event("x", Tag::new(tag), x);
            }
            tag += gap;
        }
        behaviors.push(behavior);
    }
    assert!(behaviors[0].clock_equivalent(&behaviors[1]));
    // x fires at the 2nd and 4th instants, as in the paper's trace.
    let x = behaviors[0].stream("x").unwrap();
    assert_eq!(x.len(), 2);
}

/// E2 — Section 1: composing the filter with the merge breaks endochrony
/// (the composition has two roots), although each component is
/// endochronous and the whole remains compilable.
#[test]
fn e2_merge_composition_breaks_endochrony() {
    let filter = ClockAnalysis::analyze(&stdlib::filter().normalize().unwrap());
    let merge = ClockAnalysis::analyze(&stdlib::merge().normalize().unwrap());
    assert!(filter.is_endochronous());
    assert!(merge.is_endochronous());

    let composed = ClockAnalysis::analyze(&stdlib::filter_merge().normalize().unwrap());
    assert!(composed.is_compilable());
    assert!(!composed.is_endochronous());
    assert_eq!(composed.roots().len(), 2);
}

/// E5 — Section 4: the hierarchy figures of the filter and the buffer each
/// have a single root; the producer/consumer composition has two.
#[test]
fn e5_hierarchy_figures() {
    let buffer = ClockAnalysis::analyze(&stdlib::buffer().normalize().unwrap());
    let rendered = buffer.hierarchy().render();
    // The root class synchronizes r, s and t; x and y sit below it.
    let first_line = rendered.lines().next().unwrap();
    assert!(first_line.contains("^t"));
    assert!(first_line.contains("^s"));
    assert!(first_line.contains("^r"));
    assert!(rendered.lines().count() >= 3);

    let main = ClockAnalysis::analyze(&stdlib::producer_consumer().normalize().unwrap());
    assert_eq!(main.roots().len(), 2);
    let rendered = main.hierarchy().render();
    assert!(rendered.contains("^a"));
    assert!(rendered.contains("^b"));
}

/// The one-place buffer behaves like the paper's timing diagram: values of
/// y are re-emitted on x one activation later, alternating read/write.
#[test]
fn buffer_timing_diagram() {
    let kernel = stdlib::buffer().normalize().unwrap();
    let mut sim = Simulator::with_activation(&kernel, ["t"]);
    let mut read = Stream::new();
    let mut written = Stream::new();
    for i in 0..10i64 {
        let r = sim.step(&[("y", Drive::Available(Value::Int(i)))]).unwrap();
        if let Some(v) = r.value("y") {
            read.insert(Tag::new(i as u64), v);
        }
        if let Some(v) = r.value("x") {
            written.insert(Tag::new(i as u64), v);
        }
    }
    assert_eq!(read.len(), 5);
    assert_eq!(written.len(), 5);
    assert!(read.values().eq(written.values()));
}
