//! The static throughput/latency predictor, validated against execution.
//!
//! `Design::performance_prediction` derives — from the same k-periodic
//! clock words that bound the channels — each component's steady-state
//! reactions per environment token, the per-edge traffic, the
//! pipeline-fill latency and the bottleneck edge, all before a single
//! reaction runs.  This suite checks the model in three escalating ways:
//!
//! * **analytic** — on the E13 buffer pipelines the rates are exact:
//!   every stage performs two reactions per environment token, so an
//!   `n`-stage pipeline predicts `2n` reactions per input and a fill
//!   latency of `2(n-1)` instants;
//! * **counted** — the predicted total reaction count matches the
//!   measured `total_reactions` of a real run, exactly (the model and
//!   the machine agree token for token);
//! * **timed** — the acceptance criterion of the predictor: calibrate a
//!   per-reaction cost on one pipeline length, predict the throughput of
//!   *longer* pipelines from statics alone, and require the prediction
//!   to land within 2x of the wall-clock measurement.

use polychrony::gals_rt::{Backend, ExecutionMode, StopReason};
use polychrony::isochron::library;
use polychrony::moc::Value;

const MODES: [ExecutionMode; 2] = [
    ExecutionMode::ThreadPerComponent,
    ExecutionMode::Pool {
        workers: 2,
        quantum: 4,
    },
];

#[test]
fn the_pipeline_prediction_matches_the_analytic_rate_model() {
    for n in [1usize, 2, 4, 8] {
        let design = library::buffer_pipeline_design(n).expect("builds");
        let prediction = design.performance_prediction().expect("derives");
        // Each buffer stage reads its input at (10) and emits at (01):
        // two reactions per environment token, one token forwarded.
        assert_eq!(
            prediction.reactions_per_input(),
            (2 * n) as f64,
            "pipe{n} reactions per input"
        );
        for component in &prediction.components {
            assert_eq!(
                component.reactions_per_input, 2.0,
                "{} in pipe{n}",
                component.name
            );
        }
        // Each interior stage delays the first token by two instants.
        assert_eq!(prediction.fill_latency, 2 * (n - 1), "pipe{n} fill latency");
        // Every edge carries exactly one token per input; the bottleneck
        // (if any edge exists) reflects that.
        for edge in &prediction.edges {
            assert_eq!(edge.tokens_per_input, 1.0, "pipe{n} edge {}", edge.signal);
        }
        if n > 1 {
            let bottleneck = prediction.bottleneck().expect("has edges");
            assert_eq!(bottleneck.tokens_per_input, 1.0);
        }
    }
}

#[test]
fn the_multirate_prediction_reflects_the_burst_words() {
    let design = library::multirate_design().expect("builds");
    let prediction = design.performance_prediction().expect("derives");
    // Source and sink are both paced by the same 6-phase ring: one
    // reaction per environment token each.
    assert_eq!(prediction.reactions_per_input(), 2.0);
    // The x edge moves three tokens per six instants.
    let edge = prediction
        .edges
        .iter()
        .find(|e| e.signal.as_str() == "x")
        .expect("x edge predicted");
    assert!((edge.tokens_per_input - 0.5).abs() < 1e-9, "{edge:?}");
    // Under derived sizing the prediction reports the derived capacity.
    assert_eq!(edge.capacity, 3, "k-periodic bound rides into the report");
}

#[test]
fn the_predicted_reaction_count_matches_the_measured_run() {
    const TOKENS: usize = 64;
    for n in [2usize, 4] {
        let design = library::buffer_pipeline_design(n).expect("builds");
        let prediction = design.performance_prediction().expect("derives");
        for mode in MODES {
            let mut deployment = design.deploy_derived().expect("verified");
            deployment.set_execution_mode(mode).expect("valid mode");
            deployment.set_prediction(prediction.clone());
            deployment.feed("p0", (0..TOKENS).map(|i| Value::Int(i as i64)));
            let outcome = deployment.run().expect("the deployment runs");
            let stats = outcome.stats();
            for component in &stats.components {
                assert_ne!(component.stop, StopReason::Deadlocked, "pipe{n}, {mode}");
            }
            let predicted = prediction.predicted_reactions(TOKENS as u64);
            let measured = stats.total_reactions() as f64;
            // The steady-state model is exact on the pipeline; allow the
            // drain of the final partial wave as slop.
            let slop = (2 * n) as f64;
            assert!(
                (measured - predicted).abs() <= slop,
                "pipe{n}, {mode}: predicted {predicted}, measured {measured}"
            );
        }
    }
}

#[test]
fn the_calibrated_throughput_prediction_lands_within_2x_of_e13() {
    // The acceptance gate: calibrate the per-reaction cost on the
    // 2-stage pipeline, then predict the throughput of the 4- and
    // 8-stage pipelines from the static model alone and compare against
    // the measured wall clock under the same scheduler configuration.
    const TOKENS: usize = 256;
    let mode = ExecutionMode::Pool {
        workers: 2,
        quantum: 4,
    };

    let measure = |n: usize| -> (f64, f64) {
        // (input tokens per second, seconds per reaction), best of 3.
        let design = library::buffer_pipeline_design(n).expect("builds");
        let mut best: Option<(f64, f64)> = None;
        for _ in 0..3 {
            let mut deployment = design.deploy_derived().expect("verified");
            deployment.set_execution_mode(mode).expect("valid mode");
            deployment.set_backend(Backend::SpscRing);
            deployment.feed("p0", (0..TOKENS).map(|i| Value::Int(i as i64)));
            let outcome = deployment.run().expect("the deployment runs");
            let stats = outcome.stats();
            let Some(rps) = stats.reactions_per_second() else {
                continue;
            };
            let tokens_per_sec = TOKENS as f64 / stats.elapsed.as_secs_f64();
            if best.is_none_or(|(t, _)| tokens_per_sec > t) {
                best = Some((tokens_per_sec, 1.0 / rps));
            }
        }
        best.expect("at least one measurable run")
    };

    let (_, seconds_per_reaction) = measure(2);
    for n in [4usize, 8] {
        let design = library::buffer_pipeline_design(n).expect("builds");
        let prediction = design.performance_prediction().expect("derives");
        let predicted = prediction
            .predicted_throughput(seconds_per_reaction)
            .expect("positive rate");
        let (measured, _) = measure(n);
        let ratio = predicted / measured;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "pipe{n}: predicted {predicted:.0} tokens/s, measured {measured:.0} \
             tokens/s (ratio {ratio:.2} outside 2x)"
        );
    }
}

#[test]
fn the_prediction_rides_in_the_deployment_stats_report() {
    let design = library::buffer_pipeline_design(2).expect("builds");
    let prediction = design.performance_prediction().expect("derives");
    let mut deployment = design.deploy_derived().expect("verified");
    deployment.set_prediction(prediction);
    deployment.feed("p0", (0..8).map(Value::Int));
    let outcome = deployment.run().expect("the deployment runs");
    let stats = outcome.stats();
    let report = stats.prediction.as_ref().expect("prediction installed");
    assert_eq!(report.reactions_per_input(), 4.0);
    let rendered = stats.to_string();
    assert!(
        rendered.contains("predicted steady state"),
        "stats report the prediction:\n{rendered}"
    );
}
