//! Property-based tests of the core invariants: the equivalences of the
//! polychronous model of computation, the clock algebra and the generated
//! code against the reference interpreter.

use polychrony::clocks::{bdd::Bdd, bdd::Var, ClockAnalysis};
use polychrony::codegen::{seq, SequentialRuntime};
use polychrony::moc::{Behavior, Stream, Tag, Value};
use polychrony::signal_lang::stdlib;
use polychrony::sim::{Drive, Simulator};
use proptest::prelude::*;

/// Builds a behavior over x/y from a boolean flow, with x present at the
/// change points — the filter's specification.
fn filter_behavior(flow: &[bool], stride: u64) -> Behavior {
    let mut behavior = Behavior::empty_on(["x", "y"]);
    let mut previous = true;
    for (i, v) in flow.iter().enumerate() {
        let tag = Tag::new(i as u64 * stride);
        behavior.insert_event("y", tag, Value::Bool(*v));
        if *v != previous {
            behavior.insert_event("x", tag, Value::Bool(true));
        }
        previous = *v;
    }
    behavior
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Clock equivalence is invariant under uniform re-timing, and implies
    /// flow equivalence.
    #[test]
    fn clock_equivalence_is_retiming_invariant(flow in prop::collection::vec(any::<bool>(), 1..20),
                                               stride in 1u64..5) {
        let a = filter_behavior(&flow, 1);
        let b = filter_behavior(&flow, stride);
        prop_assert!(a.clock_equivalent(&b));
        prop_assert!(a.flow_equivalent(&b));
    }

    /// Restriction and complement partition a behavior.
    #[test]
    fn restriction_partitions_behaviors(flow in prop::collection::vec(any::<bool>(), 1..20)) {
        let b = filter_behavior(&flow, 1);
        let on_x = b.restrict(["x"]);
        let off_x = b.hide(["x"]);
        prop_assert_eq!(on_x.union(&off_x), b);
    }

    /// Streams built from values keep their flow.
    #[test]
    fn stream_flows_roundtrip(values in prop::collection::vec(-100i64..100, 0..30)) {
        let s = Stream::from_values(Tag::ZERO, values.clone());
        prop_assert_eq!(s.flow(), values.into_iter().map(Value::from).collect::<Vec<_>>());
    }

    /// The BDD package satisfies basic Boolean algebra laws on random
    /// three-variable formulas.
    #[test]
    fn bdd_laws(assignments in prop::collection::vec(any::<(bool, bool, bool)>(), 1..8)) {
        let mut bdd = Bdd::new();
        let x = bdd.var(Var(0));
        let y = bdd.var(Var(1));
        let z = bdd.var(Var(2));
        // Build a DNF from the sampled assignments.
        let mut f = bdd.zero();
        for (a, b, c) in &assignments {
            let la = if *a { x } else { bdd.not(x) };
            let lb = if *b { y } else { bdd.not(y) };
            let lc = if *c { z } else { bdd.not(z) };
            let t1 = bdd.and(la, lb);
            let term = bdd.and(t1, lc);
            f = bdd.or(f, term);
        }
        // Double negation and excluded middle.
        let nf = bdd.not(f);
        let nnf = bdd.not(nf);
        prop_assert!(bdd.equivalent(f, nnf));
        let total = bdd.or(f, nf);
        prop_assert!(bdd.is_true(total));
        // Evaluation agrees with membership in the DNF.
        for (a, b, c) in assignments {
            let holds = bdd.eval(f, |v| match v.0 { 0 => a, 1 => b, _ => c });
            prop_assert!(holds);
        }
    }

    /// The generated code of the filter agrees with the reference
    /// interpreter on arbitrary boolean input flows.
    #[test]
    fn generated_filter_matches_the_interpreter(flow in prop::collection::vec(any::<bool>(), 1..40)) {
        let kernel = stdlib::filter().normalize().unwrap();
        // Reference interpreter.
        let mut sim = Simulator::new(&kernel);
        let mut expected = Vec::new();
        for v in &flow {
            let r = sim.step(&[("y", Drive::Present(Value::Bool(*v)))]).unwrap();
            if let Some(x) = r.value("x") {
                expected.push(x);
            }
        }
        // Generated step program.
        let program = seq::generate(&ClockAnalysis::analyze(&kernel));
        let mut rt = SequentialRuntime::new(program);
        rt.feed("y", flow.clone());
        rt.run(flow.len() + 1);
        prop_assert_eq!(rt.output("x"), expected.as_slice());
    }

    /// The generated code of the producer agrees with the interpreter on
    /// arbitrary activation flows.
    #[test]
    fn generated_producer_matches_the_interpreter(flow in prop::collection::vec(any::<bool>(), 1..40)) {
        let kernel = stdlib::producer().normalize().unwrap();
        let mut sim = Simulator::new(&kernel);
        let mut expected_u = Vec::new();
        let mut expected_x = Vec::new();
        for v in &flow {
            let r = sim.step(&[("a", Drive::Present(Value::Bool(*v)))]).unwrap();
            if let Some(u) = r.value("u") {
                expected_u.push(u);
            }
            if let Some(x) = r.value("x") {
                expected_x.push(x);
            }
        }
        let program = seq::generate(&ClockAnalysis::analyze(&kernel));
        let mut rt = SequentialRuntime::new(program);
        rt.feed("a", flow.clone());
        rt.run(flow.len() + 1);
        prop_assert_eq!(rt.output("u"), expected_u.as_slice());
        prop_assert_eq!(rt.output("x"), expected_x.as_slice());
    }
}
