//! Property tests for the lock-free SPSC ring of `gals_rt::ring`.
//!
//! The ring carries every token of the deployment's hottest path, so its
//! contract is checked under real two-thread interleavings, not just
//! sequentially: arbitrary mixes of `send`/`recv`/`try_recv` across two
//! threads must preserve FIFO order, never lose or duplicate a token, keep
//! the occupancy within the fixed capacity, and closing either endpoint
//! must unblock a parked peer.  (CI re-runs this suite repeatedly under
//! `--release` so the atomics are exercised under optimized codegen.)

use std::thread;
use std::time::Duration;

use polychrony::gals_rt::ring::ring;
use polychrony::gals_rt::{ChannelClosed, TryRecvError};
use polychrony::moc::Value;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the capacity, the stream length and the consumer's mix of
    /// blocking and non-blocking receives, the consumer drains exactly the
    /// sent sequence: FIFO order, no loss, no duplication — and the
    /// occupancy it observes never exceeds the fixed capacity.
    #[test]
    fn two_thread_interleavings_preserve_fifo_without_loss_or_duplication(
        capacity in 1usize..9,
        count in 0usize..300,
        pattern in prop::collection::vec(any::<bool>(), 1..12),
    ) {
        let (tx, rx) = ring(capacity);
        let producer = thread::spawn(move || {
            for i in 0..count {
                tx.send(Value::Int(i as i64)).expect("receiver alive");
            }
            // Dropping tx closes the ring after the last token.
        });
        let mut received = Vec::with_capacity(count);
        let mut turn = 0usize;
        loop {
            prop_assert!(rx.len() <= capacity, "occupancy {} > capacity", rx.len());
            let non_blocking = pattern[turn % pattern.len()];
            turn += 1;
            if non_blocking {
                match rx.try_recv() {
                    Ok(token) => received.push(token),
                    Err(TryRecvError::Empty) => continue,
                    Err(TryRecvError::Closed) => break,
                }
            } else {
                match rx.recv() {
                    Ok(token) => received.push(token),
                    Err(ChannelClosed) => break,
                }
            }
        }
        producer.join().unwrap();
        let expected: Vec<Value> = (0..count as i64).map(Value::Int).collect();
        prop_assert_eq!(received, expected);
    }

    /// A producer parked on a full ring is unblocked by the receiver's
    /// drop and observes the close as a typed error, never a hang.
    #[test]
    fn closing_the_receiver_unblocks_a_parked_sender(capacity in 1usize..9) {
        let (tx, rx) = ring(capacity);
        for i in 0..capacity {
            tx.send(Value::Int(i as i64)).expect("ring has room");
        }
        let blocked = thread::spawn(move || tx.send(Value::Bool(true)));
        // Give the sender time to reach the parked state.
        thread::sleep(Duration::from_millis(5));
        drop(rx);
        prop_assert_eq!(blocked.join().unwrap(), Err(ChannelClosed));
    }

    /// A consumer parked on an empty ring is unblocked by the sender's
    /// drop; tokens buffered before the close are still delivered first
    /// (close-then-drain).
    #[test]
    fn closing_the_sender_unblocks_a_parked_receiver(
        capacity in 1usize..9,
        buffered in 0usize..4,
    ) {
        let buffered = buffered.min(capacity);
        let (tx, rx) = ring(capacity);
        for i in 0..buffered {
            tx.send(Value::Int(i as i64)).expect("ring has room");
        }
        let consumer = thread::spawn(move || {
            let mut drained = Vec::new();
            while let Ok(token) = rx.recv() {
                drained.push(token);
            }
            drained
        });
        thread::sleep(Duration::from_millis(5));
        drop(tx);
        let drained = consumer.join().unwrap();
        let expected: Vec<Value> = (0..buffered as i64).map(Value::Int).collect();
        prop_assert_eq!(drained, expected);
    }

    /// `try_recv` distinguishes a momentarily empty ring from a closed and
    /// drained one.
    #[test]
    fn try_recv_tells_empty_from_closed(capacity in 1usize..9) {
        let (tx, rx) = ring(capacity);
        prop_assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(Value::Int(7)).expect("room");
        drop(tx);
        prop_assert_eq!(rx.try_recv(), Ok(Value::Int(7)));
        prop_assert_eq!(rx.try_recv(), Err(TryRecvError::Closed));
    }
}
