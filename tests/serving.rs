//! The serving layer: admission control, tenant isolation, priorities.
//!
//! `gals_serve::Server` hosts many verified deployments on one shared
//! pool.  This suite covers the contract edges the example does not
//! linger on:
//!
//! * every typed refusal path of admission — unverified design,
//!   over-budget (components and predicted reactions), duplicate id —
//!   and that refusals are *transient*: finishing a tenant releases its
//!   reservation, so the same submission succeeds afterwards;
//! * pricing: the admitted footprint is exactly what the verification
//!   artifacts say (component count, summed derived bounds, predicted
//!   reactions per input);
//! * isolation: concurrent tenants drain to the same flows and
//!   conformance verdicts a dedicated batch run would produce;
//! * priorities: a high-priority tenant admitted *last* into a paused
//!   single-worker pool finishes before every earlier batch tenant;
//! * the timeout path: a finish deadline that expires hands the handle
//!   back intact, reservation included.

use std::time::Duration;

use polychrony::gals_serve::{
    AdmitError, AdmitOptions, Budget, FinishError, Resource, Server, ServerOptions,
};
use polychrony::isochron::{library, Design};
use polychrony::moc::Value;
use polychrony::signal_lang::{stdlib, Expr, ProcessBuilder};

/// A design that fails the static weak-hierarchy criterion: a lone
/// `default` over unrelated inputs, composed with a filter.
fn unverified_design() -> Design {
    let loose = ProcessBuilder::new("loose")
        .define("d", Expr::var("y").default(Expr::var("z")))
        .build()
        .expect("the process builds");
    Design::compose("bad", [loose, stdlib::filter()]).expect("composes")
}

#[test]
fn an_unverified_design_is_refused_at_admission() {
    let server = Server::start(ServerOptions::new(2, 8)).expect("starts");
    let err = server.admit("shady", &unverified_design()).unwrap_err();
    assert_eq!(err, AdmitError::NotVerified("bad".into()));
    assert_eq!(server.load().deployments, 0, "nothing was reserved");
}

#[test]
fn the_footprint_is_priced_from_the_verification_artifacts() {
    let design = library::buffer_pipeline_design(3).expect("builds");
    let server = Server::start(ServerOptions::new(2, 8)).expect("starts");
    let handle = server.admit("priced", &design).expect("admitted");
    let footprint = handle.footprint();
    assert_eq!(footprint.components, 3);
    let analysis = design.capacity_analysis().expect("verified");
    let slots: usize = analysis.bounds().values().map(|c| c.bound).sum();
    assert_eq!(footprint.channel_slots, slots);
    // Each buffer stage performs two reactions per environment token.
    assert_eq!(footprint.reactions_per_input, 6.0);
    // The bottleneck edge's producer and consumer got the boost.
    assert!(!handle.boosted().is_empty(), "predictor seeded priorities");
    assert_eq!(server.load().in_use, *footprint);
    drop(handle);
    assert_eq!(server.load().deployments, 0, "dropping releases");
}

#[test]
fn an_over_budget_submission_is_refused_and_fits_after_a_release() {
    let design = library::buffer_pipeline_design(3).expect("builds");
    let mut options = ServerOptions::new(2, 8);
    options.budget = Budget::unlimited().with_components(4);
    let server = Server::start(options).expect("starts");

    let mut first = server.admit("first", &design).expect("3 of 4 fit");
    let err = server.admit("second", &design).unwrap_err();
    assert_eq!(
        err,
        AdmitError::OverBudget {
            id: "second".into(),
            resource: Resource::Components,
            requested: 3.0,
            in_use: 3.0,
            limit: 4.0,
        }
    );

    // Refusals are transient: finishing the first tenant releases its
    // reservation and the identical submission is admitted.
    first.feed("p0", (0..4).map(Value::Int)).expect("feeds");
    first
        .finish(Duration::from_secs(30))
        .expect("the first tenant drains");
    let second = server.admit("second", &design).expect("now fits");
    assert_eq!(server.load().in_use.components, 3);
    drop(second);
}

#[test]
fn the_reactions_budget_is_metered_by_the_predictor() {
    // A 2-stage pipeline predicts 4 reactions per environment token;
    // a ceiling of 3 cannot host it.
    let design = library::buffer_pipeline_design(2).expect("builds");
    let mut options = ServerOptions::new(2, 8);
    options.budget = Budget::unlimited().with_reactions_per_input(3.0);
    let server = Server::start(options).expect("starts");
    let err = server.admit("hot", &design).unwrap_err();
    assert!(
        matches!(
            err,
            AdmitError::OverBudget {
                resource: Resource::ReactionsPerInput,
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn a_duplicate_id_is_refused_while_the_first_is_in_flight() {
    let design = library::buffer_pipeline_design(2).expect("builds");
    let server = Server::start(ServerOptions::new(2, 8)).expect("starts");
    let mut tenant = server.admit("t", &design).expect("admitted");
    assert_eq!(
        server.admit("t", &design).unwrap_err(),
        AdmitError::DuplicateId("t".into())
    );
    tenant.feed("p0", (0..4).map(Value::Int)).expect("feeds");
    tenant.finish(Duration::from_secs(30)).expect("drains");
    // The id is free again once the tenant is gone.
    let again = server.admit("t", &design).expect("id released");
    drop(again);
}

#[test]
fn concurrent_tenants_drain_to_isolated_conformant_outcomes() {
    const TENANTS: usize = 8;
    const TOKENS: i64 = 16;
    let design = library::buffer_pipeline_design(2).expect("builds");
    let server = Server::start(ServerOptions::new(3, 4)).expect("starts");

    let mut handles = Vec::new();
    for tenant in 0..TENANTS {
        handles.push(server.admit(format!("t{tenant}"), &design).expect("fits"));
    }
    assert_eq!(server.load().deployments, TENANTS);
    assert_eq!(
        server.tenants(),
        (0..TENANTS).map(|t| format!("t{t}")).collect::<Vec<_>>()
    );
    // Interleaved feeding: every tenant is in flight at once, each with
    // a distinct stream so cross-talk would be visible.
    for chunk in 0..(TOKENS / 4) {
        for (tenant, handle) in handles.iter_mut().enumerate() {
            let base = (tenant as i64) * 100 + chunk * 4;
            handle
                .feed("p0", (base..base + 4).map(Value::Int))
                .expect("p0 is an environment input");
        }
    }
    for (tenant, handle) in handles.into_iter().enumerate() {
        let outcome = handle.finish(Duration::from_secs(30)).expect("drains");
        let expected: Vec<Value> = (0..TOKENS)
            .map(|i| Value::Int((tenant as i64) * 100 + i))
            .collect();
        assert_eq!(outcome.flow("p2"), expected, "tenant {tenant}");
        let report = outcome.check_conformance().expect("reference registered");
        assert!(report.is_isochronous(), "tenant {tenant}: {report}");
    }
    assert_eq!(server.load().deployments, 0, "every reservation released");
}

#[test]
fn a_high_priority_tenant_admitted_last_finishes_first() {
    const BATCH: usize = 4;
    const TOKENS: i64 = 16;
    let design = library::buffer_pipeline_design(2).expect("builds");
    // One worker, paused: every component queues without dispatching, so
    // on resume the worker always pops the highest-priority ready cell.
    let mut options = ServerOptions::new(1, 64);
    options.paused = true;
    let server = Server::start(options).expect("starts");

    let mut batch = Vec::new();
    for tenant in 0..BATCH {
        let mut handle = server
            .admit(format!("batch{tenant}"), &design)
            .expect("fits");
        handle
            .feed("p0", (0..TOKENS).map(Value::Int))
            .expect("feeds");
        handle.close_inputs();
        batch.push(handle);
    }
    let critical_options = AdmitOptions {
        base_priority: 10,
        ..AdmitOptions::default()
    };
    let mut critical = server
        .admit_with("critical", &design, &critical_options)
        .expect("fits");
    critical
        .feed("p0", (0..TOKENS).map(Value::Int))
        .expect("feeds");
    critical.close_inputs();

    server.resume();
    assert!(critical.wait(Duration::from_secs(30)), "critical finishes");
    for handle in &batch {
        assert!(handle.wait(Duration::from_secs(30)), "batch finishes");
    }
    let critical_rank = critical.completion_index().expect("finished");
    for (tenant, handle) in batch.iter().enumerate() {
        let rank = handle.completion_index().expect("finished");
        assert!(
            critical_rank < rank,
            "critical (rank {critical_rank}) should overtake batch{tenant} (rank {rank})"
        );
    }
    let outcome = critical
        .finish(Duration::from_secs(30))
        .expect("critical drains");
    assert_eq!(outcome.flow("p2").len(), TOKENS as usize);
    for handle in batch {
        handle
            .finish(Duration::from_secs(30))
            .expect("batch drains");
    }
}

#[test]
fn a_finish_timeout_hands_the_handle_back_with_its_reservation() {
    let design = library::buffer_pipeline_design(2).expect("builds");
    // Paused pool: the tenant cannot make progress, so a zero deadline
    // must expire deterministically.
    let mut options = ServerOptions::new(1, 8);
    options.paused = true;
    let server = Server::start(options).expect("starts");
    let mut tenant = server.admit("slow", &design).expect("admitted");
    tenant.feed("p0", (0..4).map(Value::Int)).expect("feeds");

    let FinishError::Timeout { pending, handle } = tenant
        .finish(Duration::ZERO)
        .expect_err("cannot finish paused");
    assert!(!pending.is_empty(), "components still pending");
    assert_eq!(handle.id(), "slow");
    assert_eq!(
        server.load().deployments,
        1,
        "the reservation survived the timeout"
    );

    server.resume();
    let outcome = handle.finish(Duration::from_secs(30)).expect("drains now");
    assert_eq!(outcome.flow("p2").len(), 4);
    assert_eq!(server.load().deployments, 0);
}
