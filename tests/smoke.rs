//! Workspace smoke test: guards the crate wiring from future refactors.
//!
//! Every process of the paper's standard library must normalize into the
//! four-primitive kernel and pass the clock calculus without error, through
//! the re-exports of the `polychrony` facade — exercising the
//! `signal_lang` → `clocks` edge exactly the way downstream crates do.

use polychrony::clocks::ClockAnalysis;
use polychrony::signal_lang::stdlib;

#[test]
fn every_paper_process_normalizes_and_analyzes() {
    let processes = stdlib::all_paper_processes();
    assert!(
        processes.len() >= 15,
        "the paper library shrank: {} processes",
        processes.len()
    );
    for def in processes {
        let kernel = def
            .normalize()
            .unwrap_or_else(|e| panic!("process {} fails to normalize: {e}", def.name));
        let analysis = ClockAnalysis::analyze(&kernel);
        // The analysis must complete and commit to every verdict; the
        // summary names the process and renders without panicking.
        let summary = analysis.summary();
        assert!(
            summary.contains(def.name.as_str()),
            "summary of {} does not name it: {summary}",
            def.name
        );
        assert!(
            !analysis.roots().is_empty() || kernel.equations().is_empty(),
            "process {} has equations but no clock roots",
            def.name
        );
    }
}

#[test]
fn facade_reexports_every_workspace_crate() {
    // One symbol per re-exported crate: if an edge of the workspace graph
    // breaks, this fails to compile.
    let _ = polychrony::moc::Tag::new(0);
    let _ = polychrony::signal_lang::stdlib::filter();
    let _ = polychrony::clocks::ClockAnalysis::analyze(
        &polychrony::signal_lang::stdlib::filter()
            .normalize()
            .unwrap(),
    );
    let _ = polychrony::analysis::WeakEndochronyReport::check(
        &polychrony::signal_lang::stdlib::filter()
            .normalize()
            .unwrap(),
        1_000,
    );
    let _ = polychrony::codegen::seq::generate(&polychrony::clocks::ClockAnalysis::analyze(
        &polychrony::signal_lang::stdlib::filter()
            .normalize()
            .unwrap(),
    ));
    let _ = polychrony::sim::AsyncNetwork::new();
    let _ = polychrony::isochron::Design::compose(
        "smoke",
        [polychrony::signal_lang::stdlib::producer()],
    );
}
